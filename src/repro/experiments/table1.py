"""Table I — the dataset inventory (§IV-A).

Builds every corpus stand-in at a configurable scale and prints the same
rows as the paper's Table I (source, creation period, #JS, class).
"""

from __future__ import annotations

from repro.corpus.datasets import (
    N_MONTHS,
    alexa_top,
    longitudinal_alexa,
    longitudinal_npm,
    npm_top,
)
from repro.corpus.malicious import MaliciousGenerator

#: Paper's Table I script counts, for the scaled-count comparison column.
PAPER_COUNTS = {
    "Alexa Top 10k": 46_238,
    "npm Top 10k": 51_053,
    "DNC": 4_514,
    "Hynek": 29_484,
    "BSI": 36_475,
    "Alexa Top 2k * 65": 327_164,
    "npm Top 2k * 65": 482_834,
}


def run(scale: float = 0.004, seed: int = 0, months: int = 6) -> dict:
    """Build all corpora at ``scale`` × the paper's sizes.

    ``months`` limits the longitudinal corpora to evenly spaced months so
    the default run stays laptop-sized.
    """
    def scaled(count: int) -> int:
        return max(10, int(count * scale))

    month_indices = [
        int(i * (N_MONTHS - 1) / max(1, months - 1)) for i in range(months)
    ]
    corpora = {
        "Alexa Top 10k": ("2020", alexa_top(scaled(46_238), seed=seed), "Benign"),
        "npm Top 10k": ("2020", npm_top(scaled(51_053), seed=seed), "Benign"),
        "DNC": (
            "2015-2017",
            MaliciousGenerator("dnc", seed=seed).generate(scaled(4_514)),
            "Malicious",
        ),
        "Hynek": (
            "2015-2017",
            MaliciousGenerator("hynek", seed=seed).generate(scaled(29_484)),
            "Malicious",
        ),
        "BSI": (
            "2017",
            MaliciousGenerator("bsi", seed=seed).generate(scaled(36_475)),
            "Malicious",
        ),
        "Alexa Top 2k * 65": (
            "2015-2020",
            longitudinal_alexa(
                scaled(327_164) // max(1, len(month_indices)),
                seed=seed,
                months=month_indices,
            ),
            "Benign",
        ),
        "npm Top 2k * 65": (
            "2015-2020",
            longitudinal_npm(
                scaled(482_834) // max(1, len(month_indices)),
                seed=seed,
                months=month_indices,
            ),
            "Benign",
        ),
    }
    rows = []
    for source, (creation, scripts, klass) in corpora.items():
        rows.append(
            {
                "source": source,
                "creation": creation,
                "n_js": len(scripts),
                "paper_n_js": PAPER_COUNTS[source],
                "class": klass,
            }
        )
    return {"rows": rows, "scale": scale}


def report(result: dict) -> str:
    """Render the experiment result as the paper-style text block."""
    lines = [
        "Table I: dataset inventory "
        f"(scaled to {result['scale']:.3%} of paper size)",
        f"{'Source':<20} {'Creation':<10} {'#JS':>8} {'paper #JS':>10} {'Class':<10}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['source']:<20} {row['creation']:<10} {row['n_js']:>8} "
            f"{row['paper_n_js']:>10} {row['class']:<10}"
        )
    return "\n".join(lines)
