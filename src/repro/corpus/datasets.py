"""Assembled corpora standing in for Table I's datasets.

Each builder plants a known population (transformed rates, technique
mixes, rank and time trends) calibrated to what the paper *measured* on
the real web; the experiment harness then re-measures those quantities
with the trained detectors and checks the recovered shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.generator import ProgramGenerator
from repro.transform.base import Technique
from repro.transform.pipeline import TransformationPipeline


@dataclass
class Script:
    """One corpus entry with its planted ground truth."""

    source: str
    transformed: bool
    labels: frozenset = field(default_factory=frozenset)
    container: int = -1  # site or package index
    rank_group: int = 0  # 0 = most popular thousand
    month: int = -1  # longitudinal index, -1 for snapshot corpora


# Technique-selection weights for *transformed* benign scripts, calibrated
# to Figures 2 (Alexa) and 3 (npm).  Keys are the pipeline configurations;
# obfuscator.io-style configs imply extra labels via the transformers.
_ALEXA_WEIGHTS: list[tuple[tuple[Technique, ...], float]] = [
    ((Technique.MINIFICATION_SIMPLE,), 0.46),
    ((Technique.MINIFICATION_ADVANCED,), 0.41),
    ((Technique.MINIFICATION_SIMPLE, Technique.IDENTIFIER_OBFUSCATION), 0.05),
    ((Technique.IDENTIFIER_OBFUSCATION,), 0.04),
    ((Technique.STRING_OBFUSCATION,), 0.013),
    ((Technique.GLOBAL_ARRAY,), 0.007),
    ((Technique.DEAD_CODE_INJECTION,), 0.005),
    ((Technique.CONTROL_FLOW_FLATTENING,), 0.005),
    ((Technique.SELF_DEFENDING,), 0.005),
    ((Technique.DEBUG_PROTECTION,), 0.003),
    ((Technique.NO_ALPHANUMERIC,), 0.002),
]

_NPM_WEIGHTS: list[tuple[tuple[Technique, ...], float]] = [
    ((Technique.MINIFICATION_SIMPLE,), 0.58),
    ((Technique.MINIFICATION_ADVANCED,), 0.345),
    ((Technique.IDENTIFIER_OBFUSCATION,), 0.045),
    ((Technique.STRING_OBFUSCATION,), 0.012),
    ((Technique.GLOBAL_ARRAY,), 0.006),
    ((Technique.DEAD_CODE_INJECTION,), 0.004),
    ((Technique.CONTROL_FLOW_FLATTENING,), 0.004),
    ((Technique.SELF_DEFENDING,), 0.002),
    ((Technique.DEBUG_PROTECTION,), 0.002),
]


def _pick_weighted(
    rng: random.Random, weights: list[tuple[tuple[Technique, ...], float]]
) -> tuple[Technique, ...]:
    total = sum(weight for _mix, weight in weights)
    roll = rng.random() * total
    acc = 0.0
    for mix, weight in weights:
        acc += weight
        if roll <= acc:
            return mix
    return weights[-1][0]


def _make_script(
    generator: ProgramGenerator,
    rng: random.Random,
    transformed: bool,
    weights: list[tuple[tuple[Technique, ...], float]],
) -> tuple[str, bool, frozenset]:
    source = generator.generate_program()
    if not transformed:
        return source, False, frozenset()
    mix = _pick_weighted(rng, weights)
    pipeline = TransformationPipeline(mix)
    return pipeline.transform(source, rng), True, pipeline.labels


def _alexa_rate(rank_group: int) -> float:
    """Transformed-script rate by popularity group (§IV-B1: ~80% → ~72%)."""
    return 0.80 - 0.0085 * rank_group


def _npm_rate(rank_group: int) -> float:
    """npm rate by group (Fig. 4: top-1k 2.4–4.4× less transformed)."""
    if rank_group == 0:
        return 0.035
    return 0.085 + 0.004 * rank_group


# Within a container that uses transformation at all, the fraction of its
# scripts that are transformed.  Derived from the paper's script-level vs
# container-level rates (Alexa: 68.6% / 89.4%; npm: 8.7% / 15.14%).
_ALEXA_WITHIN_CONTAINER = 0.767
_NPM_WITHIN_CONTAINER = 0.574


def alexa_top(
    n_scripts: int = 200, seed: int = 0, n_groups: int = 10
) -> list[Script]:
    """Alexa-Top-10k-like crawl: mostly minified client-side scripts.

    Transformation clusters per site: build-pipeline sites minify most of
    their bundle while hand-written sites ship mostly regular files — the
    population the paper's per-site numbers imply.
    """
    rng = random.Random(seed * 7919 + 1)
    generator = ProgramGenerator(seed * 31 + 2)
    scripts: list[Script] = []
    container_uses_transform: dict[int, bool] = {}
    for index in range(n_scripts):
        rank_group = (index * n_groups) // n_scripts
        container = index // 4  # ~4 scripts per site
        if container not in container_uses_transform:
            container_rate = min(1.0, _alexa_rate(rank_group) / _ALEXA_WITHIN_CONTAINER)
            container_uses_transform[container] = rng.random() < container_rate
        transformed = (
            container_uses_transform[container]
            and rng.random() < _ALEXA_WITHIN_CONTAINER
        )
        source, is_transformed, labels = _make_script(
            generator, rng, transformed, _ALEXA_WEIGHTS
        )
        scripts.append(
            Script(source, is_transformed, labels, container=container, rank_group=rank_group)
        )
    return scripts


def npm_top(
    n_scripts: int = 200, seed: int = 0, n_groups: int = 10
) -> list[Script]:
    """npm-Top-10k-like collection: mostly regular library code.

    As for Alexa, transformation clusters per package (shipped bundles are
    fully minified; ordinary packages are fully regular).
    """
    rng = random.Random(seed * 104729 + 3)
    generator = ProgramGenerator(seed * 13 + 4)
    scripts: list[Script] = []
    container_uses_transform: dict[int, bool] = {}
    for index in range(n_scripts):
        rank_group = (index * n_groups) // n_scripts
        container = index // 5  # ~5 files per package
        if container not in container_uses_transform:
            container_rate = min(1.0, _npm_rate(rank_group) / _NPM_WITHIN_CONTAINER)
            container_uses_transform[container] = rng.random() < container_rate
        transformed = (
            container_uses_transform[container]
            and rng.random() < _NPM_WITHIN_CONTAINER
        )
        source, is_transformed, labels = _make_script(
            generator, rng, transformed, _NPM_WEIGHTS
        )
        scripts.append(
            Script(source, is_transformed, labels, container=container, rank_group=rank_group)
        )
    return scripts


# ---- longitudinal corpora (Figures 6–8) -------------------------------------

N_MONTHS = 65  # 2015-05 … 2020-09


def month_label(month: int) -> str:
    """'2015-05' … '2020-09' for longitudinal month indices."""
    year = 2015 + (month + 4) // 12
    month_of_year = (month + 4) % 12 + 1
    return f"{year}-{month_of_year:02d}"


def _alexa_longitudinal_rate(month: int) -> float:
    """Steady rise of the transformed share over 65 months (Fig. 6)."""
    return 0.55 + 0.17 * (month / (N_MONTHS - 1))


def _alexa_longitudinal_weights(month: int) -> list[tuple[tuple[Technique, ...], float]]:
    """Fig. 7: minification simple 38.74%→47.02%, advanced 43.77%→40%,
    identifier obfuscation 8.23%→6.21%."""
    t = month / (N_MONTHS - 1)
    simple = 0.3874 + (0.4702 - 0.3874) * t
    advanced = 0.4377 + (0.40 - 0.4377) * t
    identifier = 0.0823 + (0.0621 - 0.0823) * t
    rest = max(0.0, 1.0 - simple - advanced - identifier)
    return [
        ((Technique.MINIFICATION_SIMPLE,), simple),
        ((Technique.MINIFICATION_ADVANCED,), advanced),
        ((Technique.IDENTIFIER_OBFUSCATION,), identifier),
        ((Technique.STRING_OBFUSCATION,), rest * 0.4),
        ((Technique.GLOBAL_ARRAY,), rest * 0.2),
        ((Technique.DEAD_CODE_INJECTION,), rest * 0.2),
        ((Technique.CONTROL_FLOW_FLATTENING,), rest * 0.2),
    ]


def _npm_longitudinal_rate(month: int, rng: random.Random) -> float:
    """Three phases (Fig. 6): ~7.4% noisy, ~17.95% stable, ~15.17% stable."""
    if month < 12:  # 2015-05 .. 2016-04
        return max(0.01, rng.gauss(0.074, 0.074 * 0.2422))
    if month < 49:  # 2016-05 .. 2019-05
        return max(0.01, rng.gauss(0.1795, 0.1795 * 0.059))
    return max(0.01, rng.gauss(0.1517, 0.1517 * 0.059))


_NPM_LONGITUDINAL_WEIGHTS: list[tuple[tuple[Technique, ...], float]] = [
    ((Technique.MINIFICATION_SIMPLE,), 0.5862),
    ((Technique.MINIFICATION_ADVANCED,), 0.3428),
    ((Technique.IDENTIFIER_OBFUSCATION,), 0.0971),
    ((Technique.STRING_OBFUSCATION,), 0.01),
    ((Technique.GLOBAL_ARRAY,), 0.01),
]


def longitudinal_alexa(
    scripts_per_month: int = 20, seed: int = 0, months: list[int] | None = None
) -> list[Script]:
    """Alexa Top-2k-like monthly crawls between 2015-05 and 2020-09."""
    rng = random.Random(seed * 53 + 11)
    generator = ProgramGenerator(seed * 17 + 12)
    months = months if months is not None else list(range(N_MONTHS))
    scripts: list[Script] = []
    for month in months:
        weights = _alexa_longitudinal_weights(month)
        rate = _alexa_longitudinal_rate(month)
        for _ in range(scripts_per_month):
            transformed = rng.random() < rate
            source, is_transformed, labels = _make_script(
                generator, rng, transformed, weights
            )
            scripts.append(Script(source, is_transformed, labels, month=month))
    return scripts


def longitudinal_npm(
    scripts_per_month: int = 20, seed: int = 0, months: list[int] | None = None
) -> list[Script]:
    """npm Top-2k-like monthly snapshots with the three-phase trend."""
    rng = random.Random(seed * 59 + 21)
    generator = ProgramGenerator(seed * 19 + 22)
    months = months if months is not None else list(range(N_MONTHS))
    scripts: list[Script] = []
    for month in months:
        rate = _npm_longitudinal_rate(month, rng)
        for _ in range(scripts_per_month):
            transformed = rng.random() < rate
            source, is_transformed, labels = _make_script(
                generator, rng, transformed, _NPM_LONGITUDINAL_WEIGHTS
            )
            scripts.append(Script(source, is_transformed, labels, month=month))
    return scripts
