"""The ESTree field schema driving the slotted AST node classes.

One table describes every node type the parser, builder, and transformers
produce: the ordered field list (matching the parser's construction order,
which fixes child-iteration order and therefore traversal, n-gram, and
codegen behaviour) and which of those fields can carry child nodes.

``ast_nodes`` generates one ``__slots__`` class per entry; ``flat`` interns
the type names into dense integer ids for the flat post-order index.
Fields marked with a trailing ``*`` are child-bearing: they may hold a
:class:`~repro.js.ast_nodes.Node` or a list of nodes.  Scalar fields
(operators, flags, raw strings) are never traversed.
"""

from __future__ import annotations

# type -> space-separated ordered fields; "*" suffix marks child-bearing
# fields.  Order matters: it is the construction order the recursive-descent
# parser uses, and generic traversal yields children in this order.
_SCHEMA_SPEC: dict[str, str] = {
    "Program": "body* sourceType start end",
    "EmptyStatement": "start end",
    "BlockStatement": "body* start end",
    "VariableDeclaration": "declarations* kind start end",
    "VariableDeclarator": "id* init* start end",
    "Identifier": "name start end",
    "PrivateIdentifier": "name start end",
    "FunctionDeclaration": "id* params* body* generator start end async",
    "FunctionExpression": "id* params* body* generator start end async",
    "ArrowFunctionExpression": "id* params* body* expression generator start end async",
    "RestElement": "argument* start end",
    "SpreadElement": "argument* start end",
    "AssignmentPattern": "left* right* start end",
    "ArrayPattern": "elements* start end",
    "ObjectPattern": "properties* start end",
    "ClassDeclaration": "id* superClass* body* start end",
    "ClassExpression": "id* superClass* body* start end",
    "ClassBody": "body* start end",
    "MethodDefinition": "key* value* kind static computed start end",
    "PropertyDefinition": "key* value* static computed start end",
    "IfStatement": "test* consequent* alternate* start end",
    "ForStatement": "init* test* update* body* start end",
    "ForInStatement": "left* right* body* start end",
    "ForOfStatement": "left* right* body* start end",
    "WhileStatement": "test* body* start end",
    "DoWhileStatement": "body* test* start end",
    "SwitchStatement": "discriminant* cases* start end",
    "SwitchCase": "test* consequent* start end",
    "ReturnStatement": "argument* start end",
    "BreakStatement": "label* start end",
    "ContinueStatement": "label* start end",
    "ThrowStatement": "argument* start end",
    "TryStatement": "block* handler* finalizer* start end",
    "CatchClause": "param* body* start end",
    "DebuggerStatement": "start end",
    "WithStatement": "object* body* start end",
    "LabeledStatement": "label* body* start end",
    "ExpressionStatement": "expression* start end",
    "ImportDeclaration": "specifiers* source* start end",
    "ImportDefaultSpecifier": "local* start end",
    "ImportNamespaceSpecifier": "local* start end",
    "ImportSpecifier": "imported* local* start end",
    "ExportDefaultDeclaration": "declaration* start end",
    "ExportAllDeclaration": "source* start end",
    "ExportNamedDeclaration": "declaration* specifiers* source* start end",
    "ExportSpecifier": "local* exported* start end",
    "SequenceExpression": "expressions* start end",
    "AssignmentExpression": "operator left* right* start end",
    "YieldExpression": "argument* delegate start end",
    "ConditionalExpression": "test* consequent* alternate* start end",
    "LogicalExpression": "operator left* right* start end",
    "BinaryExpression": "operator left* right* start end",
    "UnaryExpression": "operator argument* prefix start end",
    "UpdateExpression": "operator argument* prefix start end",
    "AwaitExpression": "argument* start end",
    "MemberExpression": "object* property* computed optional start end",
    "CallExpression": "callee* arguments* optional start end",
    "TaggedTemplateExpression": "tag* quasi* start end",
    "MetaProperty": "meta* property* start end",
    "NewExpression": "callee* arguments* start end",
    "Literal": "value raw regex start end",
    "ThisExpression": "start end",
    "Super": "start end",
    "Import": "start end",
    "ArrayExpression": "elements* start end",
    "ObjectExpression": "properties* start end",
    "Property": "key* value* kind method shorthand computed start end",
    "TemplateLiteral": "quasis* expressions* start end",
    "TemplateElement": "value tail start end",
}

#: type -> ordered tuple of all fields (construction / iteration order).
NODE_FIELDS: dict[str, tuple[str, ...]] = {}
#: type -> ordered tuple of the child-bearing subset of ``NODE_FIELDS``.
CHILD_FIELDS: dict[str, tuple[str, ...]] = {}

for _type, _spec in _SCHEMA_SPEC.items():
    _fields = []
    _children = []
    for _name in _spec.split():
        if _name.endswith("*"):
            _name = _name[:-1]
            _children.append(_name)
        _fields.append(_name)
    NODE_FIELDS[_type] = tuple(_fields)
    CHILD_FIELDS[_type] = tuple(_children)

#: Dense integer id per schema type, in schema declaration order.  Unknown
#: (generic) node types are interned on top of this table at runtime by
#: :mod:`repro.js.flat`.
TYPE_NAMES: tuple[str, ...] = tuple(_SCHEMA_SPEC)
TYPE_IDS: dict[str, int] = {name: i for i, name in enumerate(TYPE_NAMES)}

#: Analysis annotations every node can carry (set by scope / flow passes).
#: They live in dedicated slots so annotation never allocates an overflow
#: dict, and generic traversal never mistakes them for child fields.
ANALYSIS_FIELDS: tuple[str, ...] = (
    "parent",
    "scope",
    "binding",
    "decl_init_kind",
    "flow_out",
    "flow_in",
    "data_out",
    "data_in",
)
