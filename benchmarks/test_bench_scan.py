"""Crawl-scale scan benchmarks: cold throughput vs. incremental hit rate.

Two numbers feed the ``BENCH_scan.json`` history.  ``files_per_sec`` on
a cold store is the end-to-end pipeline rate — ingest, hash, triage
classification, and one atomic store put per unit — the number that
decides how long a crawl-sized corpus takes on first contact.
``hit_rate`` on the second pass is the content-addressed store's answer
rate over an unchanged corpus: the acceptance criterion is ≥99%, which
turns a re-crawl into a hash-probe loop with near-zero classification
work (the ``incremental_files_per_sec`` speedup is the payoff).
"""

import shutil

import pytest

from repro.scan import ScanConfig, ScanCoordinator

N_FILES = 1500


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """Synthetic minified-shaped corpus: what crawl triage mostly sees."""
    corpus = tmp_path_factory.mktemp("bench_scan") / "corpus"
    corpus.mkdir()
    for index in range(N_FILES):
        (corpus / f"u{index:05d}.js").write_text(
            f"var v{index}=7;function g{index}(x){{return x?x+{index}:0}};" * 24
        )
    return corpus


def _config(corpus, store) -> ScanConfig:
    return ScanConfig(
        roots=[str(corpus)],
        store=str(store),
        shard_size=256,
        fingerprint=False,
    )


def _throughput(benchmark, n_files: int, key: str = "files_per_sec") -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    if mean is not None and mean.mean:
        benchmark.extra_info[key] = round(n_files / mean.mean, 2)


def test_bench_scan_cold(benchmark, corpus_dir, tmp_path):
    """First-contact scan into an empty store (ingest + classify + persist)."""
    counter = [0]

    def run():
        store = tmp_path / f"cold-{counter[0]}"
        counter[0] += 1
        shutil.rmtree(store, ignore_errors=True)
        return ScanCoordinator(_config(corpus_dir, store)).run()

    stats = benchmark(run)
    assert stats.scanned == N_FILES
    assert stats.errors == 0
    _throughput(benchmark, N_FILES)


def test_bench_scan_incremental(benchmark, corpus_dir, tmp_path):
    """Re-scan of an unchanged corpus: the store answers, workers idle."""
    store = tmp_path / "warm"
    primed = ScanCoordinator(_config(corpus_dir, store)).run()
    assert primed.scanned == N_FILES

    stats = benchmark(lambda: ScanCoordinator(_config(corpus_dir, store)).run())
    assert stats.skip_rate >= 0.99
    _throughput(benchmark, N_FILES, key="incremental_files_per_sec")
    benchmark.extra_info["hit_rate"] = round(stats.skip_rate, 4)
