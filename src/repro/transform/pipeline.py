"""Composition of several transformation techniques on one file (§III-E2).

The paper's "mixed samples" test set transforms files with combined
configuration settings; :class:`TransformationPipeline` reproduces that by
chaining transformers in a canonical, semantically sensible order (e.g.
string obfuscation before minification, no-alphanumeric last since it
subsumes everything).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.transform.base import Technique, Transformer, get_transformer

# Application order mirrors real tool chains: minify first, then apply
# obfuscations (which preserve the compact formatting), JSFuck last since
# it rewrites the whole file.
_ORDER = [
    Technique.MINIFICATION_ADVANCED,
    Technique.MINIFICATION_SIMPLE,
    Technique.DEAD_CODE_INJECTION,
    Technique.CONTROL_FLOW_FLATTENING,
    Technique.STRING_OBFUSCATION,
    Technique.GLOBAL_ARRAY,
    Technique.IDENTIFIER_OBFUSCATION,
    Technique.DEBUG_PROTECTION,
    Technique.SELF_DEFENDING,
    Technique.NO_ALPHANUMERIC,
]

#: Techniques that rewrite the whole file so thoroughly that combining them
#: with later steps would erase the earlier technique's traces entirely.
_TERMINAL = frozenset({Technique.NO_ALPHANUMERIC})


class TransformationPipeline:
    """Apply several monitored techniques to one source file."""

    def __init__(self, techniques: Iterable[Technique | str]) -> None:
        chosen = [Technique(t) if isinstance(t, str) else t for t in techniques]
        seen: set[Technique] = set()
        self.techniques: list[Technique] = []
        for technique in _ORDER:
            if technique in chosen and technique not in seen:
                self.techniques.append(technique)
                seen.add(technique)
        unknown = set(chosen) - seen
        if unknown:
            raise ValueError(f"Unknown techniques: {sorted(t.value for t in unknown)}")

    @property
    def labels(self) -> frozenset[Technique]:
        """Ground-truth labels of the combined transformation."""
        labels: set[Technique] = set()
        for technique in self.techniques:
            if technique in _TERMINAL:
                # JSFuck last: earlier traces are destroyed.
                labels = set(get_transformer(technique).labels)
                continue
            labels |= get_transformer(technique).labels
        return frozenset(labels)

    def transform(self, source: str, rng: random.Random) -> str:
        result = source
        for technique in self.techniques:
            transformer: Transformer = get_transformer(technique)
            result = transformer.transform(result, rng)
        return result


def transform_with(
    source: str,
    techniques: Iterable[Technique | str],
    rng: random.Random | None = None,
) -> tuple[str, frozenset[Technique]]:
    """Transform ``source`` with the given techniques; returns (code, labels)."""
    pipeline = TransformationPipeline(techniques)
    return pipeline.transform(source, rng or random.Random(0)), pipeline.labels
