"""Quantile feature binning.

The tree learner works on small integer bin indices (histogram splitting,
the LightGBM idea): each float feature is discretised into at most
``max_bins`` quantile bins, after which split search is a couple of
``bincount`` calls per node instead of a sort.

``fit`` computes the quantile sweep for all columns in one
``np.quantile(..., axis=0)`` call (``np.nanquantile`` when non-finite
values are present); only the tiny per-column edge clean-up remains a
loop.
"""

from __future__ import annotations

import warnings

import numpy as np


def column_edges(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Quantile bin edges for one column (empty for all-non-finite)."""
    values = np.asarray(values, dtype=np.float64)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.empty(0)
    quantiles = np.linspace(0, 1, max_bins + 1)[1:-1]
    cuts = np.unique(np.quantile(finite, quantiles))
    return _drop_degenerate(cuts, float(finite.min()))


def bin_column(values: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Map one column of floats to uint8 bin codes using ``cuts``."""
    values = np.nan_to_num(
        np.asarray(values, dtype=np.float64), nan=0.0, posinf=1e300, neginf=-1e300
    )
    if cuts.size == 0:
        return np.zeros(len(values), dtype=np.uint8)
    return np.searchsorted(cuts, values, side="right").astype(np.uint8)


def _drop_degenerate(cuts: np.ndarray, column_min: float) -> np.ndarray:
    # Drop degenerate edges (constant features get zero edges).
    if cuts.size and cuts[0] <= column_min:
        cuts = cuts[cuts > column_min]
    return cuts


class Binner:
    """Fit quantile bin edges on training data; transform to uint8 codes."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    @classmethod
    def from_edges(cls, edges: list[np.ndarray], max_bins: int) -> "Binner":
        """A fitted binner over a given edge list (shared-edge fast paths)."""
        binner = cls(max_bins=max_bins)
        binner.edges_ = list(edges)
        return binner

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        n, d = X.shape
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        if n == 0:
            self.edges_ = [np.empty(0) for _ in range(d)]
            return self
        finite = np.isfinite(X)
        if finite.all():
            quants = np.quantile(X, quantiles, axis=0)
            mins = X.min(axis=0)
            has_finite = np.ones(d, dtype=bool)
        else:
            masked = np.where(finite, X, np.nan)
            has_finite = finite.any(axis=0)
            with warnings.catch_warnings():
                # All-NaN columns legitimately produce empty edge sets.
                warnings.simplefilter("ignore", RuntimeWarning)
                quants = np.nanquantile(masked, quantiles, axis=0)
                mins = np.nanmin(masked, axis=0)
        edges: list[np.ndarray] = []
        for column in range(d):
            if not has_finite[column]:
                edges.append(np.empty(0))
                continue
            cuts = np.unique(quants[:, column])
            edges.append(_drop_degenerate(cuts, float(mins[column])))
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner must be fitted before transform")
        X = np.asarray(X, dtype=np.float64)
        # One whole-matrix sanitisation instead of per-column allocations,
        # and contiguous columns so searchsorted avoids strided access.
        columns = np.ascontiguousarray(
            np.nan_to_num(X, nan=0.0, posinf=1e300, neginf=-1e300).T
        )
        out = np.empty((X.shape[1], X.shape[0]), dtype=np.uint8)
        for column, cuts in enumerate(self.edges_):
            if cuts.size == 0:
                out[column] = 0
            else:
                out[column] = np.searchsorted(
                    cuts, columns[column], side="right"
                ).astype(np.uint8)
        return np.ascontiguousarray(out.T)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_bins_(self) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner must be fitted first")
        return np.array([cuts.size + 1 for cuts in self.edges_], dtype=np.int64)
