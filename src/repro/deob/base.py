"""Pass protocol, safety budgets, and shared context for ``repro.deob``.

A deobfuscation pass is a *pure* AST rewrite: it receives the current
program plus a :class:`PassContext` and returns a :class:`PassResult`
whose ``program`` is either the input (untouched, zero rewrites) or a
fresh tree.  Passes must never mutate the input AST in place — the lint
gate in ``scripts/lint.sh`` runs every registered pass against a canned
sample and fails the build if the input tree changed.  The idiomatic
implementation is: scan read-only for applicability, and only when the
pass will fire, ``clone()`` the program and rewrite the clone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.js.ast_nodes import Node
from repro.rules.findings import Finding


@dataclass(frozen=True)
class Budget:
    """Safety limits for one :class:`~repro.deob.engine.DeobEngine` run.

    The engine bails out (leaving the input unchanged, or stopping with
    partial progress) rather than ever looping or scanning unboundedly on
    adversarial input.
    """

    max_nodes: int = 400_000  #: refuse files whose AST exceeds this size
    max_iterations: int = 8  #: fixpoint iterations before giving up
    max_seconds: float = 20.0  #: wall-clock ceiling for the whole run
    max_pass_seconds: float = 5.0  #: a pass exceeding this is disabled
    max_eval_depth: int = 3  #: nested eval/Function payload unwraps
    max_eval_ops: int = 2_000_000  #: JSFuck evaluator operation ceiling


@dataclass
class PassContext:
    """Per-iteration state shared by the passes.

    ``findings`` are the rule engine's findings for the *current* program
    state — passes consume the typed evidence on them (dispatcher order
    strings, string-array offsets) instead of re-deriving it.
    """

    source: str  #: source text of the current program state
    findings: list[Finding] = field(default_factory=list)
    budget: Budget = field(default_factory=Budget)
    eval_unwraps: int = 0  #: payload unwraps performed so far (all passes)
    notes: list[str] = field(default_factory=list)

    def dispatcher_order(self, state_variable: str) -> list[str] | None:
        """Execution-order case labels recovered for a dispatcher, if any."""
        for finding in self.findings:
            evidence = finding.dispatcher
            if (
                evidence is not None
                and evidence.state_variable == state_variable
                and evidence.order_string
            ):
                return evidence.order
        return None

    def string_array_evidence(self) -> list[Any]:
        """Every typed string-array evidence record in the findings."""
        return [
            finding.string_array
            for finding in self.findings
            if finding.string_array is not None
        ]

    def decoder_evidence(self) -> list[Any]:
        """Every typed decoder evidence record (R013/R014) in the findings."""
        return [
            finding.decoder
            for finding in self.findings
            if finding.decoder is not None
        ]


@dataclass
class PassResult:
    """Outcome of one pass application."""

    program: Node  #: input program (unchanged) or a fresh rewritten tree
    rewrites: int = 0  #: number of nodes rewritten/removed/inlined

    @property
    def changed(self) -> bool:
        return self.rewrites > 0


class DeobPass(ABC):
    """One invertible normalization step.

    ``techniques`` names the monitored techniques the pass targets (used
    in reports); ``late`` passes (cosmetic renaming) only run once the
    structural passes have reached fixpoint, so structural evidence is
    consumed before names change.
    """

    name: str = "pass"
    techniques: tuple[str, ...] = ()
    late: bool = False

    @abstractmethod
    def rewrite(self, program: Node, ctx: PassContext) -> PassResult:
        """Return the (possibly) rewritten program; never mutate the input."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeobPass {self.name}>"


_PURE_LITERAL_CALLS = frozenset({"split", "reverse", "join", "concat", "slice"})


def is_pure_expression(node: Node | None) -> bool:
    """Conservatively true when evaluating ``node`` cannot have effects.

    Used by dead-code elimination to decide whether an unused declaration
    can be dropped.  Identifier reads are treated as pure (worst case a
    ReferenceError in code that never ran anyway).
    """
    if node is None:
        return True
    node_type = node.type
    if node_type == "Literal":
        return True
    if node_type == "Identifier":
        return True
    if node_type in ("FunctionExpression", "ArrowFunctionExpression"):
        return True
    if node_type == "UnaryExpression":
        return node.operator != "delete" and is_pure_expression(node.argument)
    if node_type in ("BinaryExpression", "LogicalExpression"):
        return is_pure_expression(node.left) and is_pure_expression(node.right)
    if node_type == "ConditionalExpression":
        return (
            is_pure_expression(node.test)
            and is_pure_expression(node.consequent)
            and is_pure_expression(node.alternate)
        )
    if node_type == "ArrayExpression":
        return all(is_pure_expression(el) for el in node.elements if el is not None)
    if node_type == "MemberExpression":
        return is_pure_expression(node.object) and (
            not node.get("computed") or is_pure_expression(node.property)
        )
    if node_type == "CallExpression":
        # String-method chains on literals ("ab".split("")) are pure.
        callee = node.callee
        if callee.type != "MemberExpression":
            return False
        prop = callee.property
        method = (
            prop.value
            if callee.get("computed") and prop.type == "Literal"
            else prop.get("name")
            if prop.type == "Identifier"
            else None
        )
        if method not in _PURE_LITERAL_CALLS:
            return False
        return is_pure_expression(callee.object) and all(
            is_pure_expression(arg) for arg in node.arguments
        )
    return False
