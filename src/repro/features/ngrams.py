"""AST 4-gram features (§III-B).

A window of length four moves over the pre-order sequence of syntactic
units (AST node types), retaining local structure: *"moving a window of
length four over the list of syntactic units extracted enables to retain
information about the code original syntactic structure."*

The n-gram space is hashed into a fixed number of dimensions so every file
maps into the same vector space regardless of which n-grams it contains.
"""

from __future__ import annotations

import zlib
from collections import Counter

import numpy as np

from repro.js.ast_nodes import Node, iter_child_nodes


def ast_unit_sequence(program: Node) -> list[str]:
    """Pre-order sequence of node types (the paper's syntactic units)."""
    sequence: list[str] = []
    stack = [program]
    while stack:
        node = stack.pop()
        sequence.append(node.type)
        children = list(iter_child_nodes(node))
        stack.extend(reversed(children))
    return sequence


def token_unit_sequence(tokens) -> list[str]:
    """Lexical-unit sequence (CUJO-style [39]): token categories, with
    punctuators and keywords kept verbatim since they carry structure."""
    from repro.js.tokens import TokenType

    sequence: list[str] = []
    for token in tokens:
        if token.type is TokenType.EOF:
            continue
        if token.type in (TokenType.PUNCTUATOR, TokenType.KEYWORD):
            sequence.append(token.value)
        else:
            sequence.append(token.type.value)
    return sequence


def token_ngram_vector(
    tokens,
    n: int = 4,
    n_dims: int = 512,
    max_units: int = 200_000,
) -> np.ndarray:
    """Hashed n-gram vector over lexical units instead of AST units.

    Provided for the ablation against the paper's AST 4-grams (related
    work CUJO models reports with lexical n-grams)."""
    sequence = token_unit_sequence(tokens)
    return _hashed_ngrams(sequence, n, n_dims, max_units)


def byte_ngram_vector(
    source: str,
    n_dims: int = 512,
    max_bytes: int = 1_000_000,
) -> np.ndarray:
    """Hashed byte 4-gram vector, fully vectorised (no tokenization).

    The cheapest head for the lexer fast path: pack each 4-byte window of
    the UTF-8 encoding into a 32-bit word, Fibonacci-hash it, and bucket
    with one ``bincount``.  Works on any input, including files the lexer
    rejects.
    """
    data = source.encode("utf-8", errors="replace")[:max_bytes]
    vector = np.zeros(n_dims, dtype=np.float64)
    if len(data) < 4 or n_dims <= 0:
        return vector
    raw = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    words = raw[:-3] | (raw[1:-2] << 8) | (raw[2:-1] << 16) | (raw[3:] << 24)
    # Knuth's multiplicative hash; mask keeps the product in 32 bits so the
    # high half carries the mixed bits.
    buckets = (((words * 2654435761) & 0xFFFFFFFF) >> 16) % n_dims
    counts = np.bincount(buckets.astype(np.int64), minlength=n_dims)
    vector += counts
    total = vector.sum()
    if total > 0:
        vector /= total
    return vector


def ast_ngram_vector(
    program: Node,
    n: int = 4,
    n_dims: int = 512,
    max_units: int = 200_000,
) -> np.ndarray:
    """Hashed, frequency-normalised n-gram vector of length ``n_dims``.

    ``max_units`` caps the traversal on pathological inputs (multi-megabyte
    machine-generated files) — the prefix is representative since n-gram
    frequencies stabilise quickly.
    """
    sequence = ast_unit_sequence(program)
    return _hashed_ngrams(sequence, n, n_dims, max_units)


def hashed_ngram_vector(
    sequence: list[str],
    n: int = 4,
    n_dims: int = 512,
    max_units: int = 200_000,
) -> np.ndarray:
    """Hashed n-gram vector over a precomputed unit sequence.

    Lets callers holding a :class:`repro.js.flat.FlatIndex` reuse its
    pre-order type-name array instead of re-walking the tree."""
    return _hashed_ngrams(sequence, n, n_dims, max_units)


#: ``(n, n_dims) -> {gram tuple -> bucket}``.  The universe of AST-type
#: n-grams is small (node types, not identifiers), so the crc32 bucketing
#: is memoized process-wide; the cap is a safety valve for open-ended
#: unit alphabets (token n-grams over raw punctuator values).
_BUCKET_CACHE: dict[tuple[int, int], dict[tuple[str, ...], int]] = {}
_BUCKET_CACHE_MAX = 1 << 16


def _hashed_ngrams(
    sequence: list[str], n: int, n_dims: int, max_units: int
) -> np.ndarray:
    if len(sequence) > max_units:
        sequence = sequence[:max_units]
    vector = np.zeros(n_dims, dtype=np.float64)
    if len(sequence) < n:
        return vector
    if n == 4:
        grams = zip(sequence, sequence[1:], sequence[2:], sequence[3:])
    else:
        grams = zip(*(sequence[i:] for i in range(n)))
    # Count each distinct gram once, then hash per distinct gram.  Bucket
    # sums stay exact (small integers in float64), so the result is
    # bit-identical to per-occurrence accumulation.
    counts = Counter(grams)
    cache = _BUCKET_CACHE.setdefault((n, n_dims), {})
    cache_get = cache.get
    caching = len(cache) < _BUCKET_CACHE_MAX
    crc32 = zlib.crc32
    for gram, count in counts.items():
        bucket = cache_get(gram)
        if bucket is None:
            bucket = crc32("\x00".join(gram).encode("utf-8")) % n_dims
            if caching:
                cache[gram] = bucket
        vector[bucket] += count
    total = vector.sum()
    if total > 0:
        vector /= total
    return vector
