"""The ``FlowFeatures`` block: interprocedural call-graph signals.

Folds the :mod:`repro.flows.interproc` summaries into the static feature
dictionary: call-graph shape (fan-out, resolved-call ratio) and decoder
counts the per-file lexical/AST features cannot express.  Like the rule
block, it rides at the end of ``GENERIC_FEATURES`` — adding it bumped
``MODEL_FORMAT_VERSION`` so older artifacts are refused at load time
instead of mis-projecting.

A degraded (budget-capped) analysis contributes all zeros, identical to
a file with no functions — detectors treat "could not afford the pass"
the same as "nothing interprocedural to see".
"""

from __future__ import annotations

#: Feature names contributed by the interprocedural pass, in vector order.
FLOW_FEATURES: list[str] = [
    "flow_functions",
    "flow_call_fanout_max",
    "flow_call_fanout_mean",
    "flow_resolved_call_ratio",
    "flow_decoder_count",
    "flow_selfref_functions",
    "flow_pure_ratio",
]


def compute_flow_features(result) -> dict[str, float]:
    """Fold an :class:`~repro.flows.interproc.InterprocResult` into features.

    Accepts ``None`` (analysis skipped) or a degraded result; both yield
    the all-zeros block so projection stays well-defined everywhere.
    """
    values = {name: 0.0 for name in FLOW_FEATURES}
    if result is None or not result.summaries:
        return values
    fanouts = [summary.fanout for summary in result.summaries]
    functions = len(result.summaries)
    values["flow_functions"] = float(functions)
    values["flow_call_fanout_max"] = float(max(fanouts))
    values["flow_call_fanout_mean"] = sum(fanouts) / functions
    values["flow_resolved_call_ratio"] = result.resolved_ratio
    values["flow_decoder_count"] = float(len(result.decoders))
    values["flow_selfref_functions"] = float(
        sum(1 for summary in result.summaries if summary.self_referencing)
    )
    values["flow_pure_ratio"] = (
        sum(1 for summary in result.summaries if summary.pure) / functions
    )
    return values
