"""Self-defending code (§II-A: code protection).

Reproduces obfuscator.io's *self defending* option [24]: the output is
wrapped in a guard that stringifies one of its own functions and tests the
formatting with a regular expression — reformatting (beautifying) or
renaming the code breaks the check.  The technique only makes sense on
compact output, so the tool always minifies and hex-renames too; samples
built with it therefore carry three ground-truth labels (the paper's
"up to three different labels" case, §III-E1).
"""

from __future__ import annotations

import random

from repro.js.codegen import generate
from repro.js.parser import parse
from repro.transform.base import Technique, Transformer, register
from repro.transform.renaming import rename_hex

_GUARD_TEMPLATE = """\
var {outer} = (function () {{
    var {flag} = true;
    return function ({context}, {callback}) {{
        var {wrapper} = {flag} ? function () {{
            if ({callback}) {{
                var {result} = {callback}["apply"]({context}, arguments);
                {callback} = null;
                return {result};
            }}
        }} : function () {{}};
        {flag} = false;
        return {wrapper};
    }};
}})();
var {checker} = {outer}(this, function () {{
    var {probe} = function () {{
        var {pattern} = {probe}
            ["constructor"]('return /" + this + "/')()
            ["compile"]('^([^ ]+( +[^ ]+)+)+[^ ]}}');
        return !{pattern}["test"]({checker});
    }};
    return {probe}();
}});
{checker}();
"""


def _fresh(rng: random.Random) -> str:
    return "_0x" + "".join(rng.choice("0123456789abcdef") for _ in range(6))


def build_guard(rng: random.Random) -> str:
    """The self-defending preamble with randomized identifiers."""
    names = {
        key: _fresh(rng)
        for key in (
            "outer",
            "flag",
            "context",
            "callback",
            "wrapper",
            "result",
            "checker",
            "probe",
            "pattern",
        )
    }
    return _GUARD_TEMPLATE.format(**names)


class SelfDefendingWrapper(Transformer):
    """Formatting-sensitive guard + aggressive minification + renaming."""

    technique = Technique.SELF_DEFENDING
    labels = frozenset(
        {
            Technique.SELF_DEFENDING,
            Technique.IDENTIFIER_OBFUSCATION,
            Technique.MINIFICATION_SIMPLE,
        }
    )

    def transform(self, source: str, rng: random.Random) -> str:
        guarded = build_guard(rng) + "\n" + source
        program = parse(guarded)
        rename_hex(program, rng)
        return generate(program, compact=True)


register(SelfDefendingWrapper())
