"""Feature extraction from enhanced ASTs (§III-B)."""

from repro.features.extractor import FeatureExtractor, PairedFeatureExtractor
from repro.features.ngrams import ast_ngram_vector, ast_unit_sequence
from repro.features.static_features import compute_static_features

__all__ = [
    "FeatureExtractor",
    "PairedFeatureExtractor",
    "ast_ngram_vector",
    "ast_unit_sequence",
    "compute_static_features",
]
