"""Per-table / per-figure experiment harness.

Every module reproduces one table or figure from the paper's evaluation
(see DESIGN.md §4 for the full index).  Each exposes a ``run(...)``
function returning a plain-dict result and a ``report(result)`` function
printing the same rows/series the paper reports.
"""

from repro.experiments.common import ExperimentContext, measure_corpus

__all__ = ["ExperimentContext", "measure_corpus"]
