"""Flat AST index: a pooled pre-order node arena with parallel arrays.

One iterative walk — run once at parse time — lays the whole tree out in
parallel arrays: the node pool (pre-order), interned ``type_id``s, parent
indices, and depths.  Reversed pre-order is a valid bottom-up order
(iterating the arrays from the back visits every node after all of its
descendants), so post-order passes can run directly over the arrays with
no further traversal.

Downstream fusion: the pre-order type-name sequence *is* the paper's
syntactic-unit stream for AST 4-grams, and the static features' node
count / depth / breadth section reduces to ``Counter`` scans over these
arrays — replacing what used to be three independent recursive walks
(unit-sequence extraction, shape traversal, and per-type bucketing) with
one.
"""

from __future__ import annotations

from array import array

from repro.js.ast_nodes import Node, iter_child_nodes
from repro.js.estree import TYPE_IDS

class _InternTable(dict):
    """Type-name -> dense-id table that interns unknown names on miss."""

    __slots__ = ()

    def __missing__(self, key: str) -> int:
        type_id = len(self)
        self[key] = type_id
        return type_id


#: Process-wide type-id interning table.  Seeded with the schema ids from
#: :mod:`repro.js.estree`; node types outside the schema (generic nodes
#: from foreign ESTree JSON) get fresh ids on first sight.
_RUNTIME_TYPE_IDS = _InternTable(TYPE_IDS)


def intern_type_id(type_name: str) -> int:
    """Dense integer id for a node type (stable within the process)."""
    return _RUNTIME_TYPE_IDS[type_name]


class FlatIndex:
    """Parallel pre-order arrays over one parsed program.

    ``nodes[i]`` is the i-th node in pre-order; ``type_names[i]`` its type
    (the interned class-attribute string), ``type_ids[i]`` the dense type
    id, ``parents[i]`` the pre-order index of its parent (``-1`` for the
    root), and ``depths[i]`` its depth below the root.  ``type_ids`` is
    materialized from ``type_names`` on first access (one C-level map)
    and cached; every other array is filled during the parse-time walk.
    """

    __slots__ = ("nodes", "type_names", "parents", "depths", "_type_ids")

    def __init__(
        self,
        nodes: list[Node],
        type_names: list[str],
        parents: array,
        depths: array,
    ) -> None:
        self.nodes = nodes
        self.type_names = type_names
        self.parents = parents
        self.depths = depths
        self._type_ids: array | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def type_ids(self) -> array:
        ids = self._type_ids
        if ids is None:
            ids = self._type_ids = array(
                "i", map(_RUNTIME_TYPE_IDS.__getitem__, self.type_names)
            )
        return ids

    @property
    def max_depth(self) -> int:
        return max(self.depths) if self.depths else 0


def build_flat_index(program: Node) -> FlatIndex:
    """One pre-order walk producing the flat arrays for ``program``.

    The walk inlines :func:`iter_child_nodes`'s per-type field-table scan
    (no generator per node) and carries the depth on the work stack, so
    nodes, type names, parents, and depths all land in one pass.
    """
    nodes: list[Node] = []
    type_names: list[str] = []
    parents = array("i")
    depths_list: list[int] = []
    nodes_append = nodes.append
    names_append = type_names.append
    parents_append = parents.append
    depths_append = depths_list.append
    getattr_ = getattr
    isinstance_ = isinstance
    node_type = Node
    list_type = list
    index = -1
    stack: list[tuple[Node, int, int]] = [(program, -1, 0)]
    pop = stack.pop
    push = stack.append
    while stack:
        node, parent_index, depth = pop()
        index += 1
        nodes_append(node)
        names_append(node.type)
        parents_append(parent_index)
        depths_append(depth)
        child_fields = node._child_fields_rev
        if child_fields is None:
            child_depth = depth + 1
            for child in reversed(list(iter_child_nodes(node))):
                push((child, index, child_depth))
            continue
        # Push children directly in reverse so pop order is document
        # order — no intermediate child list, no generator per node.
        child_depth = depth + 1
        for key in child_fields:
            value = getattr_(node, key, None)
            if value is None:
                continue
            if value.__class__ is list_type:
                for item in reversed(value):
                    if isinstance_(item, node_type):
                        push((item, index, child_depth))
            elif isinstance_(value, node_type):
                push((value, index, child_depth))
    return FlatIndex(nodes, type_names, parents, array("i", depths_list))
