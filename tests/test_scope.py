"""Scope analysis tests: declaration kinds, hoisting, def/use resolution."""

from repro.js.parser import parse
from repro.js.scope import analyze_scopes, pattern_identifiers


def bindings_of(source: str) -> dict:
    scope = analyze_scopes(parse(source))
    return {binding.name: binding for binding in scope.iter_all_bindings()}


class TestDeclarations:
    def test_var_kind(self):
        assert bindings_of("var x = 1;")["x"].kind == "var"

    def test_let_const_kinds(self):
        table = bindings_of("let a = 1; const b = 2;")
        assert table["a"].kind == "let"
        assert table["b"].kind == "const"

    def test_function_declaration(self):
        assert bindings_of("function f() {}")["f"].kind == "function"

    def test_class_declaration(self):
        assert bindings_of("class C {}")["C"].kind == "class"

    def test_params(self):
        table = bindings_of("function f(a, b) { return a + b; }")
        assert table["a"].kind == "param"

    def test_catch_param(self):
        assert bindings_of("try {} catch (e) {}")["e"].kind == "catch"

    def test_import_binding(self):
        assert bindings_of("import x from 'mod';")["x"].kind == "import"

    def test_undeclared_is_global(self):
        assert bindings_of("console.log(1);")["console"].kind == "global"

    def test_destructuring_declares_all(self):
        table = bindings_of("var { a, b: [c, d = 1], ...e } = obj;")
        for name in "acde":
            assert name in table
        assert "b" not in table  # property key, not a binding


class TestHoisting:
    def test_var_hoists_to_function_scope(self):
        source = "function f() { if (x) { var inner = 1; } return inner; }"
        scope = analyze_scopes(parse(source))
        fn_scope = scope.children[0]
        assert fn_scope.kind == "function"
        assert "inner" in fn_scope.bindings

    def test_let_stays_in_block(self):
        source = "function f() { if (x) { let inner = 1; } }"
        scope = analyze_scopes(parse(source))
        fn_scope = scope.children[0]
        assert "inner" not in fn_scope.bindings

    def test_function_declaration_usable_before_definition(self):
        table = bindings_of("callIt(); function callIt() {}")
        assert table["callIt"].kind == "function"
        assert len(table["callIt"].references) == 1


class TestResolution:
    def test_reference_counts(self):
        table = bindings_of("var x = 1; f(x); g(x, x);")
        assert len(table["x"].references) == 3

    def test_assignment_counts(self):
        table = bindings_of("var x = 1; x = 2; x += 3;")
        assert len(table["x"].assignments) == 3

    def test_update_counts_as_read_and_write(self):
        table = bindings_of("var i = 0; i++;")
        assert len(table["i"].assignments) == 2
        assert len(table["i"].references) == 1

    def test_shadowing_inner_param(self):
        source = "var x = 1; function f(x) { return x; }"
        scope = analyze_scopes(parse(source))
        outer = scope.bindings["x"]
        assert len(outer.references) == 0  # inner x shadows

    def test_closure_resolves_outer(self):
        source = "var shared = 1; function f() { return shared; }"
        table = bindings_of(source)
        assert len(table["shared"].references) == 1

    def test_member_property_not_reference(self):
        table = bindings_of("var obj = {}; obj.length;")
        assert "length" not in table

    def test_computed_member_is_reference(self):
        table = bindings_of("var k = 'a'; obj[k];")
        assert len(table["k"].references) == 1

    def test_property_key_not_reference(self):
        table = bindings_of("var a = 1; var o = { a: 2 };")
        assert len(table["a"].references) == 0

    def test_shorthand_property_is_reference(self):
        table = bindings_of("var a = 1; var o = { a };")
        assert len(table["a"].references) == 1

    def test_label_not_a_binding(self):
        table = bindings_of("loop: while (1) { break loop; }")
        assert "loop" not in table

    def test_named_function_expression_self_reference(self):
        source = "var f = function fact(n) { return n < 2 ? 1 : n * fact(n - 1); };"
        table = bindings_of(source)
        assert len(table["fact"].references) == 1

    def test_for_loop_scope(self):
        table = bindings_of("for (let i = 0; i < 3; i++) { use(i); }")
        assert table["i"].kind == "let"
        assert len(table["i"].references) >= 2

    def test_for_of_binding(self):
        table = bindings_of("for (const v of xs) { use(v); }")
        assert len(table["v"].references) == 1

    def test_identifier_binding_attribute_set(self):
        program = parse("var x = 1; f(x);")
        analyze_scopes(program)
        call_arg = program.body[1].expression.arguments[0]
        assert call_arg.binding.name == "x"


class TestScopeTree:
    def test_names_in_scope(self):
        source = "var top = 1; function f(p) { var local = 2; }"
        scope = analyze_scopes(parse(source))
        fn_scope = scope.children[0]
        names = fn_scope.names_in_scope()
        assert {"top", "f", "p", "local"} <= names

    def test_class_scope(self):
        scope = analyze_scopes(parse("class C { m() { return 1; } }"))
        assert any(child.kind == "class" for child in scope.children)

    def test_switch_creates_block_scope(self):
        source = "switch (x) { case 1: let y = 1; break; }"
        scope = analyze_scopes(parse(source))
        assert any("y" in child.bindings for child in scope.children)


class TestPatternIdentifiers:
    def test_simple(self):
        program = parse("var x;")
        target = program.body[0].declarations[0].id
        assert [n.name for n in pattern_identifiers(target)] == ["x"]

    def test_nested(self):
        program = parse("var [a, { b, c: [d] }, ...e] = v;")
        target = program.body[0].declarations[0].id
        assert [n.name for n in pattern_identifiers(target)] == ["a", "b", "d", "e"]

    def test_none(self):
        assert pattern_identifiers(None) == []
