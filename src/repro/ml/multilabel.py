"""Multi-task (multi-label) wrappers over binary classifiers.

The paper compares two strategies (§III-D3):

- :class:`BinaryRelevance` — C independent binary classifiers [43],
- :class:`ClassifierChain` — classifier at position P additionally consumes
  the predictions of positions 0..P-1 as features [41], [38].

Its validation selects the classifier chain with random forests; both are
provided so the ablation benchmark can reproduce that comparison.

Both wrappers share one :class:`~repro.ml.binning.Binner` across
positions when the factory produces random forests: the base feature
block is quantile-binned exactly once, and chain position *k* only bins
the single appended label column.  Augmented matrices are preallocated
(``(n, d + n_labels - 1)``) instead of ``np.column_stack``-copied per
position.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.binning import Binner, bin_column, column_edges
from repro.ml.forest import RandomForestClassifier

ForestFactory = Callable[[], RandomForestClassifier]


def _default_factory() -> RandomForestClassifier:
    return RandomForestClassifier()


def _shared_binner_ok(classifiers: list) -> bool:
    """True when every classifier can consume shared pre-binned codes."""
    bins = set()
    for clf in classifiers:
        if not isinstance(clf, RandomForestClassifier):
            return False
        bins.add(clf.max_bins)
    return len(bins) == 1


class BinaryRelevance:
    """Independent one-vs-rest decomposition of a multi-label problem."""

    def __init__(
        self,
        n_labels: int,
        factory: ForestFactory | None = None,
        n_jobs: int | None = None,
    ) -> None:
        self.n_labels = n_labels
        self.factory = factory or _default_factory
        self.n_jobs = n_jobs
        self.classifiers_: list[RandomForestClassifier] = []

    def _make_classifiers(self) -> list[RandomForestClassifier]:
        classifiers = [self.factory() for _ in range(self.n_labels)]
        if self.n_jobs is not None:
            for clf in classifiers:
                if isinstance(clf, RandomForestClassifier):
                    clf.n_jobs = self.n_jobs
        return classifiers

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "BinaryRelevance":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.int64)
        if Y.shape != (len(X), self.n_labels):
            raise ValueError(f"Y must have shape (n, {self.n_labels})")
        classifiers = self._make_classifiers()
        if _shared_binner_ok(classifiers):
            # Bin the feature block once; every label reuses the codes.
            binner = Binner(max_bins=classifiers[0].max_bins).fit(X)
            X_binned = binner.transform(X)
            for label, classifier in enumerate(classifiers):
                classifier.fit_binned(X_binned, Y[:, label], binner)
        else:
            for label, classifier in enumerate(classifiers):
                classifier.fit(X, Y[:, label])
        self.classifiers_ = classifiers
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, n_labels) matrix of per-label probabilities."""
        if not self.classifiers_:
            raise RuntimeError("Model must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        first = self.classifiers_[0]
        shared = isinstance(first, RandomForestClassifier) and all(
            isinstance(clf, RandomForestClassifier)
            and clf.binner_ is first.binner_
            for clf in self.classifiers_
        )
        if shared and first.binner_ is not None:
            X_binned = first.binner_.transform(X)
            columns = [
                clf.predict_proba_binned(X_binned) for clf in self.classifiers_
            ]
        else:
            columns = [clf.predict_proba(X) for clf in self.classifiers_]
        return np.stack(columns, axis=1)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)


class ClassifierChain:
    """Chained one-vs-rest classifiers sharing earlier predictions.

    During training, classifier P sees the ground-truth labels of positions
    0..P-1 appended to the feature vector; during inference it sees the
    chain's own (probabilistic) predictions, the standard construction of
    Read et al. [41].
    """

    def __init__(
        self,
        n_labels: int,
        factory: ForestFactory | None = None,
        order: list[int] | None = None,
        n_jobs: int | None = None,
    ) -> None:
        self.n_labels = n_labels
        self.factory = factory or _default_factory
        self.order = order if order is not None else list(range(n_labels))
        if sorted(self.order) != list(range(n_labels)):
            raise ValueError("order must be a permutation of range(n_labels)")
        self.n_jobs = n_jobs
        self.classifiers_: list[RandomForestClassifier] = []

    def _make_classifiers(self) -> list[RandomForestClassifier]:
        classifiers = [self.factory() for _ in range(self.n_labels)]
        if self.n_jobs is not None:
            for clf in classifiers:
                if isinstance(clf, RandomForestClassifier):
                    clf.n_jobs = self.n_jobs
        return classifiers

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "ClassifierChain":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.int64)
        if Y.shape != (len(X), self.n_labels):
            raise ValueError(f"Y must have shape (n, {self.n_labels})")
        n, d = X.shape
        classifiers = self._make_classifiers()
        if _shared_binner_ok(classifiers):
            self._fit_shared_binner(X, Y, classifiers, n, d)
        else:
            # Generic path: one preallocated float matrix, label columns
            # written in place (no per-position column_stack copies).
            augmented = np.empty((n, d + self.n_labels - 1))
            augmented[:, :d] = X
            for position, label in enumerate(self.order):
                classifiers[position].fit(
                    augmented[:, : d + position], Y[:, label]
                )
                if position < self.n_labels - 1:
                    augmented[:, d + position] = Y[:, label]
        self.classifiers_ = classifiers
        return self

    def _fit_shared_binner(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        classifiers: list[RandomForestClassifier],
        n: int,
        d: int,
    ) -> None:
        """Bin the base block once; position k bins only its new column."""
        max_bins = classifiers[0].max_bins
        base = Binner(max_bins=max_bins).fit(X)
        binned = np.empty((n, d + self.n_labels - 1), dtype=np.uint8)
        binned[:, :d] = base.transform(X)
        edges = list(base.edges_)
        for position, label in enumerate(self.order):
            classifiers[position].fit_binned(
                binned[:, : d + position],
                Y[:, label],
                Binner.from_edges(edges[: d + position], max_bins),
            )
            if position < self.n_labels - 1:
                column = Y[:, label].astype(np.float64)
                cuts = column_edges(column, max_bins)
                edges.append(cuts)
                binned[:, d + position] = bin_column(column, cuts)

    def _binned_inference_ok(self, d: int) -> bool:
        """True when every position can run on shared pre-binned codes."""
        for position, clf in enumerate(self.classifiers_):
            if not isinstance(clf, RandomForestClassifier):
                return False
            binner = getattr(clf, "binner_", None)
            if binner is None or binner.edges_ is None:
                return False
            if len(binner.edges_) != d + position:
                return False
        return True

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, n_labels) probabilities in the original label order."""
        if not self.classifiers_:
            raise RuntimeError("Model must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        n, d = X.shape
        probabilities = np.zeros((n, self.n_labels))
        if self._binned_inference_ok(d):
            # Base block binned once; appended label columns are binned
            # with the edges the consuming position was trained on.
            binned = np.empty((n, d + self.n_labels - 1), dtype=np.uint8)
            base = self.classifiers_[0].binner_
            binned[:, :d] = base.transform(X)
            for position, label in enumerate(self.order):
                proba = self.classifiers_[position].predict_proba_binned(
                    binned[:, : d + position]
                )
                probabilities[:, label] = proba
                if position < self.n_labels - 1:
                    cuts = self.classifiers_[position + 1].binner_.edges_[
                        d + position
                    ]
                    binned[:, d + position] = bin_column(
                        (proba >= 0.5).astype(np.float64), cuts
                    )
            return probabilities
        augmented = np.empty((n, d + self.n_labels - 1))
        augmented[:, :d] = X
        for position, label in enumerate(self.order):
            proba = self.classifiers_[position].predict_proba(
                augmented[:, : d + position]
            )
            probabilities[:, label] = proba
            if position < self.n_labels - 1:
                augmented[:, d + position] = (proba >= 0.5).astype(np.float64)
        return probabilities

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)
