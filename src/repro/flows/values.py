"""Abstract value domain for the interprocedural pass (``flows/interproc``).

The domain is deliberately tiny — it only needs to carry the facts the
decoder-recovery summaries consume:

- :class:`Const` — a known scalar (string, number, boolean, ``null``),
- :class:`StringTable` — a fully-resolved array of strings plus the chain
  of names it was reached through (``decoder → table fn → array``),
- :class:`FunctionVal` — a function expression bound to a local name
  (obfuscator.io's self-memoizing table functions reassign themselves to
  one of these),
- :class:`ParamRef` / :class:`TableLookup` — symbolic values used while
  summarising a candidate decoder body (``arr[i - 0x1f]`` with ``i`` the
  first parameter),
- :data:`UNKNOWN` — everything else.

The module also owns the concrete string-decoding primitives
(``atob``-style base64, RC4 keystream mixing) so the deobfuscation layer
can *replay* a summarised decoder in Python without executing any
JavaScript.  The RC4 helper mirrors the JavaScript idiom exactly: byte
semantics are ``charCodeAt``/``fromCharCode`` over code points < 256
(latin-1), which is what ``atob`` hands a real decoder.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass


class _Unknown:
    """Singleton bottom/top value: nothing is known."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


UNKNOWN = _Unknown()


@dataclass(frozen=True)
class Const:
    """A statically known scalar (str, int/float, bool, or None)."""

    value: object


@dataclass(frozen=True)
class StringTable:
    """A resolved array of strings and the name chain it came through."""

    values: tuple[str, ...]
    origin: tuple[str, ...] = ()  #: e.g. ("getTable", "_0xdata")


@dataclass(frozen=True)
class FunctionVal:
    """A function node held in a binding (for memoized table functions)."""

    node: object  #: the Function*Expression / Declaration AST node


@dataclass(frozen=True)
class ParamRef:
    """Symbolic reference to the enclosing function's i-th parameter."""

    index: int


@dataclass(frozen=True)
class TableLookup:
    """Symbolic ``table[param ± offset]`` access inside a decoder body.

    ``offset`` is the amount *subtracted* from the call-site index, so the
    stored string for call ``f(0x25)`` is ``table[0x25 - offset]``.
    ``encoded`` marks a lookup routed through ``atob`` before use.
    """

    table: StringTable
    param: int
    offset: int
    encoded: bool = False


Value = object  # Const | StringTable | FunctionVal | ParamRef | TableLookup | _Unknown


# -- concrete decoding primitives ---------------------------------------------


def atob_bytes(value: str) -> str | None:
    """``atob`` semantics: base64 → latin-1 "binary string" (or None)."""
    try:
        return base64.b64decode(value.encode("ascii"), validate=True).decode("latin-1")
    except (binascii.Error, UnicodeDecodeError, UnicodeEncodeError, ValueError):
        return None


def atob_utf8(value: str) -> str | None:
    """Base64 → UTF-8 text, the encoding the transformer's b64 mode uses."""
    try:
        return base64.b64decode(value.encode("ascii"), validate=True).decode("utf-8")
    except (binascii.Error, UnicodeDecodeError, UnicodeEncodeError, ValueError):
        return None


def rc4(key: str, data: str) -> str:
    """RC4 over latin-1 code points, mirroring the JavaScript decoder.

    Both arguments are treated as byte strings via ``charCodeAt & 0xFF``
    (the decoder receives ``atob`` output, which is already latin-1).  The
    cipher is symmetric, so this both encrypts and decrypts.
    """
    state = list(range(256))
    j = 0
    key_codes = [ord(ch) & 0xFF for ch in key] or [0]
    for i in range(256):
        j = (j + state[i] + key_codes[i % len(key_codes)]) % 256
        state[i], state[j] = state[j], state[i]
    out: list[str] = []
    x = 0
    y = 0
    for ch in data:
        x = (x + 1) % 256
        y = (y + state[x]) % 256
        state[x], state[y] = state[y], state[x]
        out.append(chr((ord(ch) & 0xFF) ^ state[(state[x] + state[y]) % 256]))
    return "".join(out)


def decode_table_entry(kind: str, stored: str, key: str | None = None) -> str | None:
    """Replay one summarised decoder over a stored table entry.

    ``kind`` is a :class:`~repro.flows.interproc.DecoderSummary` kind:
    ``"index"`` returns the entry as stored, ``"base64"`` decodes it as
    UTF-8 base64, and ``"rc4"`` base64-decodes to a binary string and
    applies the RC4 keystream for ``key``.  Returns ``None`` when the
    stored payload does not decode cleanly — callers must leave the call
    site untouched in that case.
    """
    if kind == "index":
        return stored
    if kind == "base64":
        return atob_utf8(stored)
    if kind == "rc4":
        if key is None:
            return None
        binary = atob_bytes(stored)
        if binary is None:
            return None
        return rc4(key, binary)
    return None


# -- abstract folding helpers -------------------------------------------------

_NUMERIC = (int, float)


def fold_binary(operator: str, left: Value, right: Value) -> Value:
    """Fold a binary expression over two abstract values."""
    if not isinstance(left, Const) or not isinstance(right, Const):
        return UNKNOWN
    lv, rv = left.value, right.value
    try:
        if operator == "+":
            if isinstance(lv, str) and isinstance(rv, str):
                return Const(lv + rv)
            if (
                isinstance(lv, _NUMERIC)
                and isinstance(rv, _NUMERIC)
                and not isinstance(lv, bool)
                and not isinstance(rv, bool)
            ):
                return Const(lv + rv)
            return UNKNOWN
        if not (
            isinstance(lv, _NUMERIC)
            and isinstance(rv, _NUMERIC)
            and not isinstance(lv, bool)
            and not isinstance(rv, bool)
        ):
            return UNKNOWN
        if operator == "-":
            return Const(lv - rv)
        if operator == "*":
            return Const(lv * rv)
        if operator == "%" and rv:
            return Const(lv % rv)
        if operator == "^" and isinstance(lv, int) and isinstance(rv, int):
            return Const(lv ^ rv)
    except (ArithmeticError, TypeError, ValueError):  # pragma: no cover - safety
        return UNKNOWN
    return UNKNOWN


def const_int(value: Value) -> int | None:
    """The integral value of a Const, or None."""
    if (
        isinstance(value, Const)
        and isinstance(value.value, _NUMERIC)
        and not isinstance(value.value, bool)
        and float(value.value).is_integer()
    ):
        return int(value.value)
    return None


def const_str(value: Value) -> str | None:
    """The string value of a Const, or None."""
    if isinstance(value, Const) and isinstance(value.value, str):
        return value.value
    return None
