"""Command-line interface: train, classify, transform.

Usage::

    python -m repro train --out detector.pkl [--n-regular 60] [--seed 0]
    python -m repro classify --model detector.pkl file1.js [file2.js ...]
    python -m repro transform --technique minification_simple file.js
    python -m repro experiments [--scale small]

``classify`` without ``--model`` trains a small detector on the fly.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from repro.corpus.filters import admit
from repro.detector.level2 import DEFAULT_K, DEFAULT_THRESHOLD
from repro.detector.pipeline import TransformationDetector
from repro.transform import TECHNIQUES, TransformationPipeline


def _cmd_train(args: argparse.Namespace) -> int:
    detector = TransformationDetector(
        n_estimators=args.estimators,
        random_state=args.seed,
        n_jobs=args.train_jobs,
    )
    print(f"training on {args.n_regular} regular scripts (seed {args.seed}) ...")
    detector.train(n_regular=args.n_regular, seed=args.seed)
    detector.save(args.out)
    print(f"saved detector to {args.out}")
    return 0


def _load_or_train(model_path: str | None) -> TransformationDetector:
    if model_path:
        return TransformationDetector.load(model_path)
    print("no --model given; training a small detector (about a minute) ...")
    detector = TransformationDetector(n_estimators=12, random_state=0)
    detector.train(n_regular=30, seed=0)
    return detector


def _cmd_classify(args: argparse.Namespace) -> int:
    detector = _load_or_train(args.model)
    exit_code = 0
    names: list[str] = []
    sources: list[str] = []
    for name in args.files:
        path = Path(name)
        try:
            source = path.read_text(errors="replace")
        except OSError as error:
            print(f"{name}: cannot read ({error})", file=sys.stderr)
            exit_code = 1
            continue
        if not admit(source):
            print(f"{name}: rejected by admission filters (size/content)")
            continue
        names.append(name)
        sources.append(source)
    if not sources:
        return exit_code
    batch = detector.classify_batch(
        sources, k=args.k, threshold=args.threshold, n_workers=args.workers
    )
    for name, result in zip(names, batch.results):
        if result.error is not None:
            print(f"{name}: classification failed ({result.error})", file=sys.stderr)
            exit_code = 1
        else:
            print(f"{name}: {result}")
    print(f"[batch] {batch.stats}", file=sys.stderr)
    return exit_code


def _cmd_transform(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text(errors="replace")
    pipeline = TransformationPipeline(args.technique)
    transformed = pipeline.transform(source, random.Random(args.seed))
    labels = ", ".join(sorted(label.value for label in pipeline.labels))
    print(f"// labels: {labels}", file=sys.stderr)
    print(transformed)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(
        args.scale,
        cache_dir=args.cache_dir,
        n_workers=args.workers,
        train_jobs=args.train_jobs,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """argparse entry point."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train and save a detector")
    train.add_argument("--out", required=True)
    train.add_argument("--n-regular", type=int, default=60)
    train.add_argument("--estimators", type=int, default=16)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--train-jobs",
        type=int,
        default=1,
        help="forest-training process count (bit-identical to serial)",
    )
    train.set_defaults(func=_cmd_train)

    classify = commands.add_parser("classify", help="classify JavaScript files")
    classify.add_argument("files", nargs="+")
    classify.add_argument("--model", default=None)
    classify.add_argument(
        "--workers", type=int, default=1, help="feature-extraction process count"
    )
    classify.add_argument(
        "--k", type=int, default=DEFAULT_K, help="max techniques reported per file"
    )
    classify.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="minimum level-2 confidence for a reported technique",
    )
    classify.set_defaults(func=_cmd_classify)

    transform = commands.add_parser("transform", help="apply techniques to a file")
    transform.add_argument("file")
    transform.add_argument(
        "--technique",
        action="append",
        required=True,
        choices=[t.value for t in TECHNIQUES],
        help="repeatable; applied in the canonical pipeline order",
    )
    transform.add_argument("--seed", type=int, default=0)
    transform.set_defaults(func=_cmd_transform)

    experiments = commands.add_parser("experiments", help="regenerate all tables/figures")
    experiments.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    experiments.add_argument("--cache-dir", default=".cache")
    experiments.add_argument(
        "--workers", type=int, default=1, help="feature-extraction process count"
    )
    experiments.add_argument(
        "--train-jobs", type=int, default=1, help="forest-training process count"
    )
    experiments.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
