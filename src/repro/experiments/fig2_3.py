"""Figures 2 & 3 — transformation techniques in the wild (§IV-B).

Figure 2: Alexa Top 10k — 68.60% of scripts transformed (68.20% minified,
0.40% obfuscated), 89.4% of sites with ≥1 transformed script; technique
mix led by minification simple (45.96%) and advanced (40.24%), identifier
obfuscation at 5.72%, everything else under 1.94%.

Figure 3: npm Top 10k — 8.7% transformed (8.46% minified, 0.25%
obfuscated), 15.14% of packages; mix led by minification simple (58.34%)
and advanced (36.57%).
"""

from __future__ import annotations

from repro.corpus.datasets import alexa_top, npm_top
from repro.experiments.common import ExperimentContext, measure_corpus

PAPER_ALEXA = {
    "transformed_rate": 0.6860,
    "minified_rate": 0.6820,
    "obfuscated_rate": 0.0040,
    "container_rate": 0.894,
    "minification_simple": 0.4596,
    "minification_advanced": 0.4024,
    "identifier_obfuscation": 0.0572,
}

PAPER_NPM = {
    "transformed_rate": 0.087,
    "minified_rate": 0.0846,
    "obfuscated_rate": 0.0025,
    "container_rate": 0.1514,
    "minification_simple": 0.5834,
    "minification_advanced": 0.3657,
}


def run_alexa(context: ExperimentContext, n_scripts: int = 150, seed: int = 0) -> dict:
    """Run the Alexa variant of the experiment; returns a result dict."""
    scripts = alexa_top(n_scripts, seed=seed)
    measurement = measure_corpus(context.detector, scripts, engine=context.engine)
    planted = sum(1 for s in scripts if s.transformed) / len(scripts)
    return {
        "measurement": measurement,
        "planted_transformed_rate": planted,
        "paper": PAPER_ALEXA,
    }


def run_npm(context: ExperimentContext, n_scripts: int = 150, seed: int = 0) -> dict:
    """Run the npm variant of the experiment; returns a result dict."""
    scripts = npm_top(n_scripts, seed=seed)
    measurement = measure_corpus(context.detector, scripts, engine=context.engine)
    planted = sum(1 for s in scripts if s.transformed) / len(scripts)
    return {
        "measurement": measurement,
        "planted_transformed_rate": planted,
        "paper": PAPER_NPM,
    }


def report(result: dict, name: str) -> str:
    """Render the experiment result as the paper-style text block."""
    m = result["measurement"]
    paper = result["paper"]
    lines = [
        f"Figure {'2 (Alexa Top 10k)' if name == 'alexa' else '3 (npm Top 10k)'}:",
        f"  scripts analysed: {m.n_scripts}",
        f"  transformed: paper {paper['transformed_rate']:.2%} -> measured "
        f"{m.transformed_rate:.2%} (planted {result['planted_transformed_rate']:.2%})",
        f"  minified:    paper {paper['minified_rate']:.2%} -> measured {m.minified_rate:.2%}",
        f"  obfuscated:  paper {paper['obfuscated_rate']:.2%} -> measured {m.obfuscated_rate:.2%}",
        f"  containers with >=1 transformed: paper {paper['container_rate']:.1%} -> "
        f"measured {m.container_rate:.1%}",
        "  technique probability (mean level-2 confidence on transformed scripts):",
    ]
    ranked = sorted(m.technique_probability.items(), key=lambda kv: -kv[1])
    for technique, probability in ranked:
        paper_value = paper.get(technique)
        suffix = f" (paper {paper_value:.2%})" if paper_value is not None else ""
        lines.append(f"    {technique:<26} {probability:.2%}{suffix}")
    from repro.experiments.plotting import technique_mix_chart

    lines.append("")
    lines.append(technique_mix_chart(m.technique_probability))
    return "\n".join(lines)
