"""String obfuscation (§II-A: data obfuscation).

Covers the string-manipulation family the paper monitors: splitting and
concatenating, hex/unicode escape encoding (the *custom-encoding* tool),
``String.fromCharCode`` building, and reversal (gnirts-style, no encoding
escape).  Each string literal gets one randomly chosen method.
"""

from __future__ import annotations

import random

from repro.js.ast_nodes import Node
from repro.js.builder import binary, call, literal, member, string
from repro.js.codegen import generate
from repro.js.parser import parse
from repro.js.visitor import walk_with_parents
from repro.transform.base import Technique, Transformer, looks_minified, register


def _split_concat(value: str, rng: random.Random) -> Node:
    """``"abcdef"`` → ``"ab" + "cd" + "ef"``."""
    parts: list[str] = []
    index = 0
    while index < len(value):
        size = rng.randint(1, max(1, len(value) // 2))
        parts.append(value[index : index + size])
        index += size
    if len(parts) == 1:
        mid = max(1, len(value) // 2)
        parts = [value[:mid], value[mid:]]
    node: Node = string(parts[0])
    for part in parts[1:]:
        node = binary("+", node, string(part))
    return node


def _hex_escape(value: str) -> Node:
    """Encode every character as ``\\xNN`` / ``\\uNNNN`` escapes."""
    encoded = []
    for char in value:
        code = ord(char)
        if code <= 0xFF:
            encoded.append(f"\\x{code:02x}")
        else:
            encoded.append(f"\\u{code:04x}")
    raw = '"' + "".join(encoded) + '"'
    return literal(value, raw=raw)


def _from_char_code(value: str) -> Node:
    """``String.fromCharCode(97, 98, …)``."""
    args = [literal(ord(char)) for char in value]
    return call(member("String", "fromCharCode"), args)


def _reverse_join(value: str) -> Node:
    """``"fedcba".split("").reverse().join("")`` (gnirts-style)."""
    reversed_literal = string(value[::-1])
    split_call = call(member(reversed_literal, "split"), [string("")])
    reverse_call = call(member(split_call, "reverse"), [])
    return call(member(reverse_call, "join"), [string("")])


_METHODS = (_split_concat, _hex_escape, _from_char_code, _reverse_join)


def obfuscate_string_literals(
    program: Node,
    rng: random.Random,
    probability: float = 1.0,
    min_length: int = 2,
    methods: tuple = _METHODS,
) -> int:
    """Replace eligible string literals in place; returns how many changed."""
    replacements: list[tuple[Node, str, int | None, Node]] = []
    from repro.js.ast_nodes import iter_fields

    for node, parent in walk_with_parents(program):
        if parent is None or node.type != "Literal" or not isinstance(node.value, str):
            continue
        if len(node.value) < min_length:
            continue
        # Keep property keys, import sources and directive prologues intact.
        if parent.type in ("Property", "MethodDefinition", "PropertyDefinition") and parent.key is node:
            continue
        if parent.type in ("ImportDeclaration", "ExportNamedDeclaration", "ExportAllDeclaration"):
            continue
        if rng.random() > probability:
            continue
        method = rng.choice(methods)
        if method is _split_concat:
            replacement = method(node.value, rng)
        elif method is _hex_escape or method is _from_char_code or method is _reverse_join:
            replacement = method(node.value)
        for field, value in iter_fields(parent):
            if value is node:
                replacements.append((parent, field, None, replacement))
                break
            if isinstance(value, list):
                found = False
                for pos, item in enumerate(value):
                    if item is node:
                        replacements.append((parent, field, pos, replacement))
                        found = True
                        break
                if found:
                    break
    for parent, field, pos, replacement in replacements:
        if pos is None:
            setattr(parent, field, replacement)
        else:
            getattr(parent, field)[pos] = replacement
    return len(replacements)


_METHOD_BY_NAME = {
    "split": _split_concat,
    "hex": _hex_escape,
    "charcode": _from_char_code,
    "reverse": _reverse_join,
}


class StringObfuscator(Transformer):
    """Split/encode/rebuild string literals.

    ``methods`` restricts the technique mix (names: ``split``, ``hex``,
    ``charcode``, ``reverse`` — the gnirts / custom-encoding flavours);
    ``probability`` controls how many literals are rewritten.
    """

    technique = Technique.STRING_OBFUSCATION
    labels = frozenset({Technique.STRING_OBFUSCATION})

    def __init__(
        self,
        methods: tuple[str, ...] | None = None,
        probability: float = 1.0,
        min_length: int = 2,
    ) -> None:
        if methods is not None:
            unknown = set(methods) - set(_METHOD_BY_NAME)
            if unknown:
                raise ValueError(f"Unknown string methods: {sorted(unknown)}")
        self.methods = methods
        self.probability = probability
        self.min_length = min_length

    def transform(self, source: str, rng: random.Random) -> str:
        program = parse(source)
        chosen = (
            tuple(_METHOD_BY_NAME[name] for name in self.methods)
            if self.methods is not None
            else _METHODS
        )
        obfuscate_string_literals(
            program,
            rng,
            probability=self.probability,
            min_length=self.min_length,
            methods=chosen,
        )
        return generate(program, compact=looks_minified(source))


register(StringObfuscator())
