"""Packer ``eval``-payload unwrapping (inverts the Dean Edwards packer).

Statically detects the canonical wrapper::

    eval(function(p,a,c,k,e,d){…}('payload', 62, count, 'dict'.split('|'), 0, {}))

extracts the packed string, replays the base-62 token substitution in
Python (no JS execution), re-parses the decoded source, and splices the
statements in place of the ``eval`` call.  Plain ``eval("literal")``
calls unwrap the same way.  A payload that does not decode or re-parse
leaves the statement untouched; unwrap count is bounded by the engine's
``max_eval_depth`` budget so nested packers cannot loop forever.
"""

from __future__ import annotations

import re

from repro.deob.base import DeobPass, PassContext, PassResult
from repro.js.ast_nodes import Node, clone
from repro.js.parser import parse
from repro.js.visitor import NodeTransformer, walk

_BASE62 = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
_TOKEN_RE = re.compile(r"\b\w+\b")


def _decode_base62(token: str) -> int | None:
    value = 0
    for char in token:
        index = _BASE62.find(char)
        if index < 0:
            return None
        value = value * 62 + index
    return value


def unpack_payload(payload: str, radix: int, words: list[str]) -> str | None:
    """Replay p.a.c.k.e.d's token→word substitution; None on mismatch."""
    if radix != 62 or not words:
        return None

    def _substitute(match: re.Match) -> str:
        token = match.group(0)
        index = _decode_base62(token)
        if index is None or index >= len(words) or not words[index]:
            return token
        return words[index]

    return _TOKEN_RE.sub(_substitute, payload)


def _packer_shape(call: Node) -> tuple[str, int, list[str]] | None:
    """Match ``function(p,a,c,k,e,d){…}('payload',62,n,'dict'.split('|'),…)``."""
    if call.type != "CallExpression" or call.callee.type != "FunctionExpression":
        return None
    if len(call.callee.params) < 4 or len(call.arguments) < 4:
        return None
    payload, radix, _count, dictionary = call.arguments[:4]
    if payload.type != "Literal" or not isinstance(payload.value, str):
        return None
    if radix.type != "Literal" or not isinstance(radix.value, (int, float)):
        return None
    if (
        dictionary.type != "CallExpression"
        or dictionary.callee.type != "MemberExpression"
        or dictionary.callee.property.type != "Identifier"
        or dictionary.callee.property.name != "split"
        or dictionary.callee.object.type != "Literal"
        or not isinstance(dictionary.callee.object.value, str)
        or len(dictionary.arguments) != 1
        or dictionary.arguments[0].type != "Literal"
    ):
        return None
    separator = dictionary.arguments[0].value
    if not isinstance(separator, str):
        return None
    words = dictionary.callee.object.value.split(separator)
    return payload.value, int(radix.value), words


def _decoded_eval_source(call: Node) -> str | None:
    """The statically-recovered source an ``eval(…)`` call would run."""
    if (
        call.type != "CallExpression"
        or call.callee.type != "Identifier"
        or call.callee.name != "eval"
        or len(call.arguments) != 1
    ):
        return None
    argument = call.arguments[0]
    if argument.type == "Literal" and isinstance(argument.value, str):
        return argument.value
    packed = _packer_shape(argument)
    if packed is not None:
        return unpack_payload(*packed)
    return None


class _Unwrapper(NodeTransformer):
    def __init__(self, allowance: int):
        self.allowance = allowance
        self.unwraps = 0
        self.rewrites = 0
        self.failures = 0

    def visit_ExpressionStatement(self, node: Node) -> Node | list | None:
        if self.unwraps >= self.allowance:
            return None
        source = _decoded_eval_source(node.expression)
        if source is None:
            return None
        try:
            program = parse(source)
        except Exception:
            self.failures += 1
            return None
        self.unwraps += 1
        self.rewrites += 1 + len(program.body)
        return list(program.body)


class EvalUnwrapPass(DeobPass):
    name = "eval-unwrap"
    techniques = ("minification_simple",)

    def rewrite(self, program: Node, ctx: PassContext) -> PassResult:
        allowance = ctx.budget.max_eval_depth - ctx.eval_unwraps
        if allowance <= 0:
            return PassResult(program)
        candidates = [
            node
            for node in walk(program)
            if node.type == "ExpressionStatement"
            and _decoded_eval_source(node.expression) is not None
        ]
        if not candidates:
            return PassResult(program)
        unwrapper = _Unwrapper(allowance)
        work = unwrapper.transform(clone(program))
        if unwrapper.failures and not unwrapper.unwraps:
            ctx.notes.append("eval-unwrap: payload did not re-parse; left in place")
        if unwrapper.unwraps == 0:
            return PassResult(program)
        ctx.eval_unwraps += unwrapper.unwraps
        return PassResult(work, unwrapper.rewrites)
