#!/usr/bin/env python3
"""Explain *why* a file looks transformed — no trained model required.

The static signature engine walks the enhanced AST (scopes + control
flow + def→use edges) once and reports structured findings: which rule
fired, which of the paper's ten techniques it evidences, where in the
file, and the concrete evidence it matched.  This is the explainability
companion to the probabilistic classifier — the model says *what* a
file is, the rules say *why*.

Run:  python examples/explain_file.py [file.js ...]

Without arguments the example generates a demo set by transforming one
regular script with several techniques, then explains each variant.
The same staged engine backs ``python -m repro classify --explain``
(findings under each verdict) and ``--rules-only`` (model-free triage).
"""

import random
import sys
from pathlib import Path

from repro.corpus.generator import generate_corpus
from repro.rules import RuleEngine, TRIAGE_THRESHOLD
from repro.transform import get_transformer

DEMO_TECHNIQUES = (
    "identifier_obfuscation",
    "global_array",
    "control_flow_flattening",
    "debug_protection",
    "minification_advanced",
)


def explain(engine: RuleEngine, name: str, source: str) -> None:
    print(f"\n=== {name} ({len(source)} bytes)")

    # Staged triage: how cheaply could a crawler have decided this file?
    triage = engine.triage(source)
    verdict = "decided" if triage.decided else "undecided"
    print(f"triage: {verdict} at the {triage.stage!r} stage "
          f"(threshold {TRIAGE_THRESHOLD})")

    # Full analysis: every rule, against the complete enhanced AST.
    try:
        findings = engine.analyze_source(source)
    except (SyntaxError, ValueError, RecursionError) as error:
        print(f"  cannot parse: {error}")
        return
    if not findings:
        print("  no signatures fired — nothing suspicious statically")
        return
    for finding in sorted(findings, key=lambda f: -f.confidence):
        print(f"  {finding}")
        for key, value in sorted(finding.evidence.items()):
            print(f"      {key}: {value}")


def main() -> None:
    engine = RuleEngine()
    if len(sys.argv) > 1:
        for name in sys.argv[1:]:
            explain(engine, name, Path(name).read_text(errors="replace"))
        return

    base = generate_corpus(1, seed=99)[0]
    rng = random.Random(5)
    explain(engine, "regular.js", base)
    for technique in DEMO_TECHNIQUES:
        transformed = get_transformer(technique).transform(base, rng)
        explain(engine, f"{technique}.js", transformed)


if __name__ == "__main__":
    main()
