"""Ablation benchmarks for the design choices DESIGN.md calls out.

- classifier chain vs. independent binary relevance (§III-D3),
- n-grams + hand-picked features vs. n-grams alone,
- data-flow features on vs. off (the CF-only timeout fallback),
- threshold sweep around the paper's 10% operating point.
"""

import random

from repro.detector.level2 import Level2Detector
from repro.ml.metrics import exact_match_accuracy, thresholded_top_k, wrong_and_missing


def _level2_sets(context):
    # Ablations retrain several detectors, so cap the per-technique sizes
    # independently of the session scale to keep the suite laptop-sized.
    rng = random.Random(5)
    train = context.training_data.level2_set(
        min(12, max(6, len(context.training_data.regular) // 2)), rng
    )
    test = context.training_data.level2_set(
        min(8, max(4, len(context.training_data.regular) // 4)), rng
    )
    return train, test


def test_chain_vs_binary_relevance(benchmark, context):
    train, test = _level2_sets(context)

    def run():
        results = {}
        for use_chain in (True, False):
            detector = Level2Detector(
                n_estimators=10, random_state=3, use_chain=use_chain
            )
            detector.fit(train.sources, train.Y)
            prediction = (detector.predict_proba(test.sources) >= 0.5).astype(int)
            results["chain" if use_chain else "independent"] = exact_match_accuracy(
                test.Y, prediction
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nexact-match: chain={results['chain']:.2%} "
          f"independent={results['independent']:.2%}")
    # Paper §III-D3: the chain performed best on validation.  At bench
    # scale we require the chain not to be materially worse.
    assert results["chain"] >= results["independent"] - 0.10


def test_ngrams_alone_vs_full_features(benchmark, context):
    train, test = _level2_sets(context)

    def run():
        results = {}
        for name, ngram_dims, keep_static in (("full", 128, True), ("ngrams_only", 128, False)):
            detector = Level2Detector(n_estimators=10, random_state=4, ngram_dims=ngram_dims)
            X_train = detector.extractor.extract_matrix(train.sources)
            X_test = detector.extractor.extract_matrix(test.sources)
            if not keep_static:
                X_train = X_train[:, :ngram_dims]
                X_test = X_test[:, :ngram_dims]
            detector.fit_features(X_train, train.Y)
            prediction = (detector.predict_proba_features(X_test) >= 0.5).astype(int)
            results[name] = exact_match_accuracy(test.Y, prediction)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nexact-match: full={results['full']:.2%} ngrams-only={results['ngrams_only']:.2%}")
    # Hand-picked features should help (or at least not hurt much).
    assert results["full"] >= results["ngrams_only"] - 0.05


def test_data_flow_ablation(benchmark, context):
    train, test = _level2_sets(context)

    def run():
        results = {}
        for name, timeout in (("with_df", 120.0), ("cf_only", 0.0)):
            detector = Level2Detector(
                n_estimators=10, random_state=5, data_flow_timeout=timeout
            )
            detector.fit(train.sources, train.Y)
            prediction = (detector.predict_proba(test.sources) >= 0.5).astype(int)
            results[name] = exact_match_accuracy(test.Y, prediction)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nexact-match: with-DF={results['with_df']:.2%} CF-only={results['cf_only']:.2%}")
    # The CF-only fallback must stay usable (paper keeps analysing after
    # the 2-minute timeout).
    assert results["cf_only"] >= 0.3


def test_threshold_sweep(benchmark, context):
    """Reproduce the trade-off that led the paper to pick 10%."""
    from repro.experiments import accuracy

    ts2 = accuracy.run_test_set_2(context)

    def run():
        rows = []
        for threshold in (0.02, 0.05, 0.10, 0.25, 0.50):
            prediction = thresholded_top_k(ts2["proba"], k=7, threshold=threshold)
            wrong, missing = wrong_and_missing(ts2["Y"], prediction)
            rows.append({"threshold": threshold, "wrong": wrong, "missing": missing})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  threshold={row['threshold']:.2f} wrong={row['wrong']:.2f} "
              f"missing={row['missing']:.2f}")
    wrongs = [row["wrong"] for row in rows]
    missings = [row["missing"] for row in rows]
    # Raising the threshold trades wrong labels for missing labels.
    assert wrongs == sorted(wrongs, reverse=True)
    assert missings == sorted(missings)
