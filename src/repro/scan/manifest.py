"""Streaming manifest ingestion: directories, tarballs, crawled HTML.

Ingestion is a generator of *events* rather than a materialized list —
a crawl-scale manifest does not fit in memory, so the coordinator
consumes the stream, dedupes on content hash, and dispatches shards as
they fill.  Three event kinds flow out of :func:`iter_ingest`:

``("unit", ScanUnit)``
    One scannable piece of JavaScript, keyed by the SHA-256 of its
    source text, with a provenance record (container, kind, detail).
``("external", ExternalRef)``
    A ``<script src=...>`` URL found in a crawled page: provenance for
    the fetch frontier, no code to scan.
``("error", IngestError)``
    A structured per-file failure record — unreadable files, non-UTF-8
    bytes, oversize inputs, tar extraction errors.  Ingestion *never*
    aborts a walk on a bad file; it records and moves on.

Robustness rules (the wild is hostile):

- symlinked directories are followed but a (device, inode) visited set
  breaks symlink loops — each real directory is walked at most once;
- unreadable files (permissions, broken symlinks, vanished-during-walk)
  become ``unreadable`` error records;
- bytes that do not decode as UTF-8 become ``decode`` error records
  instead of mojibake scan units;
- members larger than the paper's 2 MB admission bound become
  ``oversize`` records without ever being read fully into memory.

Tarballs are streamed with stdlib :mod:`tarfile` — members are read
through ``extractfile`` and never extracted to disk.
"""

from __future__ import annotations

import hashlib
import os
import tarfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.corpus.filters import MAX_BYTES
from repro.corpus.html_extract import extract_units

#: file suffixes treated as JavaScript sources.
JS_SUFFIXES = frozenset({".js", ".mjs", ".cjs"})

#: file suffixes treated as crawled HTML pages.
HTML_SUFFIXES = frozenset({".html", ".htm"})

#: file suffixes treated as tar archives (streamed, never extracted).
TAR_SUFFIXES = (".tar", ".tar.gz", ".tgz", ".tar.bz2", ".tar.xz")


@dataclass(frozen=True)
class ScanUnit:
    """One scannable script, content-addressed and provenance-tagged."""

    sha256: str
    source: str
    origin: str  #: container path, e.g. "corpus/a.js" or "bundle.tgz!lib/x.js"
    kind: str  #: "file" | "tar_member" | "inline_script" | "event_handler"
    detail: str = ""  #: within-container locator, e.g. "script[2]"
    size: int = 0  #: UTF-8 byte length of ``source``

    def provenance(self) -> dict:
        """JSON-ready manifest line for this unit."""
        return {
            "type": "unit",
            "sha256": self.sha256,
            "origin": self.origin,
            "kind": self.kind,
            "detail": self.detail,
            "bytes": self.size,
        }


@dataclass(frozen=True)
class ExternalRef:
    """A ``<script src=...>`` URL: crawl-frontier provenance, no code."""

    url: str
    origin: str
    detail: str = ""

    def provenance(self) -> dict:
        return {
            "type": "external",
            "url": self.url,
            "origin": self.origin,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class IngestError:
    """Structured per-file ingestion failure (the walk never aborts)."""

    origin: str
    kind: str  #: "unreadable" | "decode" | "oversize" | "tar" | "missing"
    message: str

    def provenance(self) -> dict:
        return {
            "type": "error",
            "origin": self.origin,
            "kind": self.kind,
            "message": self.message,
        }


#: one ingestion event: ("unit", ScanUnit) | ("external", ExternalRef)
#: | ("error", IngestError)
Event = tuple


def sha256_text(source: str) -> str:
    """Content key for a scan unit (matches the batch engine's cache key)."""
    return hashlib.sha256(source.encode("utf-8", errors="replace")).hexdigest()


def _unit(source: str, origin: str, kind: str, detail: str = "") -> ScanUnit:
    return ScanUnit(
        sha256=sha256_text(source),
        source=source,
        origin=origin,
        kind=kind,
        detail=detail,
        size=len(source.encode("utf-8", errors="replace")),
    )


def _decode(data: bytes, origin: str) -> tuple[str | None, IngestError | None]:
    """Strict UTF-8 decode; failures become structured error records."""
    try:
        return data.decode("utf-8"), None
    except UnicodeDecodeError as error:
        return None, IngestError(
            origin=origin,
            kind="decode",
            message=f"not valid UTF-8 at byte {error.start}",
        )


def iter_html_text(
    html: str, origin: str, max_bytes: int = MAX_BYTES
) -> Iterator[Event]:
    """Events for one crawled HTML document (already decoded)."""
    page = extract_units(html)
    for unit in page.units:
        kind = "inline_script" if unit.kind == "inline" else "event_handler"
        scan_unit = _unit(unit.code, origin, kind, unit.detail)
        if scan_unit.size > max_bytes:
            yield (
                "error",
                IngestError(
                    origin=f"{origin}#{unit.detail}",
                    kind="oversize",
                    message=f"{scan_unit.size} bytes exceeds limit of {max_bytes}",
                ),
            )
            continue
        yield ("unit", scan_unit)
    for external in page.external:
        yield ("external", ExternalRef(external.url, origin, external.detail))


def iter_file(path: Path, origin: str, max_bytes: int = MAX_BYTES) -> Iterator[Event]:
    """Events for one on-disk file (JS source or HTML page)."""
    try:
        size = path.stat().st_size
    except OSError as error:
        yield ("error", IngestError(origin, "unreadable", str(error)))
        return
    if size > max_bytes:
        yield (
            "error",
            IngestError(
                origin, "oversize", f"{size} bytes exceeds limit of {max_bytes}"
            ),
        )
        return
    try:
        data = path.read_bytes()
    except OSError as error:
        yield ("error", IngestError(origin, "unreadable", str(error)))
        return
    text, error = _decode(data, origin)
    if error is not None:
        yield ("error", error)
        return
    assert text is not None
    if path.suffix.lower() in HTML_SUFFIXES:
        yield from iter_html_text(text, origin, max_bytes)
    else:
        yield ("unit", _unit(text, origin, "file"))


def iter_tarball(path: Path, origin: str, max_bytes: int = MAX_BYTES) -> Iterator[Event]:
    """Events for every JS/HTML member of a tar archive, streamed.

    Members are read through ``extractfile`` — nothing touches the disk.
    Per-member failures (corrupt entries, oversize members, non-UTF-8
    payloads) become error records; a corrupt archive header ends the
    archive with a single ``tar`` error record.
    """
    try:
        archive = tarfile.open(path, mode="r:*")
    except (tarfile.TarError, OSError) as error:
        yield ("error", IngestError(origin, "tar", str(error)))
        return
    with archive:
        try:
            members = iter(archive)
            while True:
                try:
                    member = next(members)
                except StopIteration:
                    break
                if not member.isfile():
                    continue
                name = member.name
                suffix = Path(name).suffix.lower()
                if suffix not in JS_SUFFIXES and suffix not in HTML_SUFFIXES:
                    continue
                member_origin = f"{origin}!{name}"
                if member.size > max_bytes:
                    yield (
                        "error",
                        IngestError(
                            member_origin,
                            "oversize",
                            f"{member.size} bytes exceeds limit of {max_bytes}",
                        ),
                    )
                    continue
                try:
                    handle = archive.extractfile(member)
                    data = handle.read() if handle is not None else None
                except (tarfile.TarError, OSError) as error:
                    yield ("error", IngestError(member_origin, "tar", str(error)))
                    continue
                if data is None:
                    yield (
                        "error",
                        IngestError(member_origin, "tar", "member has no data"),
                    )
                    continue
                text, error = _decode(data, member_origin)
                if error is not None:
                    yield ("error", error)
                    continue
                assert text is not None
                if suffix in HTML_SUFFIXES:
                    yield from iter_html_text(text, member_origin, max_bytes)
                else:
                    yield ("unit", _unit(text, member_origin, "tar_member"))
        except tarfile.TarError as error:  # corrupt archive mid-stream
            yield ("error", IngestError(origin, "tar", str(error)))


def _is_tarball(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith(TAR_SUFFIXES)


def iter_directory(root: Path, max_bytes: int = MAX_BYTES) -> Iterator[Event]:
    """Events for every scannable file under ``root`` (symlink-loop safe).

    Symlinked directories are followed, but each real directory —
    identified by ``(st_dev, st_ino)`` — is visited at most once, so
    cyclic symlinks terminate instead of recursing forever.  Entries are
    walked in sorted order and origins are recorded relative to
    ``root``, so the manifest (and everything derived from it) is
    deterministic for a given corpus.
    """
    visited: set[tuple[int, int]] = set()

    def _origin(path: Path) -> str:
        return os.path.relpath(path, root)

    def _walk(directory: Path) -> Iterator[Event]:
        try:
            stat = os.stat(directory)
        except OSError as error:
            yield ("error", IngestError(_origin(directory), "unreadable", str(error)))
            return
        key = (stat.st_dev, stat.st_ino)
        if key in visited:
            return
        visited.add(key)
        try:
            with os.scandir(directory) as scandir:
                entries = sorted(scandir, key=lambda entry: entry.name)
        except OSError as error:
            yield ("error", IngestError(_origin(directory), "unreadable", str(error)))
            return
        for entry in entries:
            path = Path(entry.path)
            origin = _origin(path)
            try:
                is_dir = entry.is_dir()  # follows symlinks
            except OSError as error:
                yield ("error", IngestError(origin, "unreadable", str(error)))
                continue
            if is_dir:
                yield from _walk(path)
                continue
            suffix = path.suffix.lower()
            if _is_tarball(entry.name):
                yield from iter_tarball(path, origin, max_bytes)
            elif suffix in JS_SUFFIXES or suffix in HTML_SUFFIXES:
                yield from iter_file(path, origin, max_bytes)

    yield from _walk(root)


def iter_ingest(roots: list[str | Path], max_bytes: int = MAX_BYTES) -> Iterator[Event]:
    """Events for a mixed list of roots: dirs, tarballs, HTML, JS files."""
    for root in roots:
        path = Path(root)
        if path.is_dir():
            yield from iter_directory(path, max_bytes=max_bytes)
        elif path.is_file():
            if _is_tarball(path.name):
                yield from iter_tarball(path, str(path), max_bytes)
            else:
                yield from iter_file(path, str(path), max_bytes)
        else:
            yield (
                "error",
                IngestError(str(path), "missing", "no such file or directory"),
            )


@dataclass
class IngestSummary:
    """Counters for one fully-drained ingestion stream (tests/CLI)."""

    units: int = 0
    externals: int = 0
    errors: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
