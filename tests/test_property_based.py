"""Property-based tests (hypothesis) on core invariants.

- parse/generate round-trip stability over generated programs,
- lexer totality and span invariants over generated programs,
- transformation outputs always re-parse,
- ML invariants: binning monotonicity, probability ranges, top-k monotone
  behaviour of the metrics.
"""

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.generator import ProgramGenerator
from repro.js.ast_nodes import to_dict
from repro.js.codegen import generate
from repro.js.lexer import tokenize
from repro.js.parser import parse
from repro.js.tokens import TokenType
from repro.ml.binning import Binner
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import thresholded_top_k, top_k_correct
from repro.transform import TECHNIQUES, get_transformer

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _strip(data):
    if isinstance(data, dict):
        return {k: _strip(v) for k, v in data.items() if k not in ("start", "end", "raw")}
    if isinstance(data, list):
        return [_strip(item) for item in data]
    return data


@st.composite
def generated_program(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return ProgramGenerator(seed).generate_program()


class TestFrontEndProperties:
    @_SETTINGS
    @given(generated_program())
    def test_roundtrip_pretty(self, source):
        ast = parse(source)
        regenerated = generate(ast)
        assert _strip(to_dict(parse(regenerated))) == _strip(to_dict(ast))

    @_SETTINGS
    @given(generated_program())
    def test_roundtrip_compact(self, source):
        ast = parse(source)
        compact = generate(ast, compact=True)
        assert _strip(to_dict(parse(compact))) == _strip(to_dict(ast))

    @_SETTINGS
    @given(generated_program())
    def test_token_spans_are_ordered_and_in_bounds(self, source):
        tokens = tokenize(source, include_comments=True)
        previous_end = 0
        for token in tokens:
            if token.type is TokenType.EOF:
                continue
            assert 0 <= token.start < token.end <= len(source)
            assert token.start >= previous_end
            assert source[token.start : token.end] == token.value
            previous_end = token.end

    @_SETTINGS
    @given(generated_program())
    def test_idempotent_pretty_printing(self, source):
        once = generate(parse(source))
        twice = generate(parse(once))
        assert once == twice


class TestTransformProperties:
    @_SETTINGS
    @given(
        generated_program(),
        st.sampled_from([t for t in TECHNIQUES if t.value != "no_alphanumeric"]),
        st.integers(min_value=0, max_value=1_000),
    )
    def test_transform_output_reparses(self, source, technique, seed):
        out = get_transformer(technique).transform(source, random.Random(seed))
        parse(out)

    @_SETTINGS
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=20))
    def test_jsfuck_spell_is_pure_symbols(self, text):
        from repro.transform.no_alphanumeric import JSFuckEncoder

        expression = JSFuckEncoder().spell(text)
        assert set(expression) <= set("[]()!+")
        parse(expression + ";")

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_jsfuck_numbers_parse(self, value):
        from repro.transform.no_alphanumeric import _number

        parse(_number(value) + ";")

    @_SETTINGS
    @given(generated_program(), st.integers(min_value=0, max_value=1_000))
    def test_renaming_preserves_node_count(self, source, seed):
        from repro.js.visitor import count_nodes
        from repro.transform.renaming import rename_hex

        program = parse(source)
        before_types = [n.type for n in __import__("repro.js.visitor", fromlist=["walk"]).walk(program)]
        rename_hex(program, random.Random(seed))
        after = parse(generate(program))
        assert count_nodes(after) >= len(before_types) - 2  # shorthand expansion may add keys


class TestMLProperties:
    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_binner_values_within_bins(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        binner = Binner(max_bins=8)
        binned = binner.fit_transform(X)
        assert (binned < np.array(binner.n_bins_)).all()

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_forest_probabilities_bounded(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] > 0).astype(int)
        if y.sum() in (0, len(y)):
            return
        forest = RandomForestClassifier(n_estimators=4, random_state=seed % 1000)
        proba = forest.fit(X, y).predict_proba(X)
        assert ((proba >= 0) & (proba <= 1)).all()

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_thresholded_topk_never_exceeds_k(self, seed):
        rng = np.random.default_rng(seed)
        proba = rng.random((20, 10))
        for k in (1, 3, 5):
            prediction = thresholded_top_k(proba, k=k, threshold=0.1)
            assert (prediction.sum(axis=1) <= k).all()

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_higher_threshold_predicts_fewer(self, seed):
        rng = np.random.default_rng(seed)
        proba = rng.random((20, 10))
        low = thresholded_top_k(proba, k=10, threshold=0.1).sum()
        high = thresholded_top_k(proba, k=10, threshold=0.5).sum()
        assert high <= low

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_topk_correct_subset_relation(self, seed):
        # If top-(k+1) is correct, top-k is correct too (prefix property).
        rng = np.random.default_rng(seed)
        proba = rng.random((15, 6))
        truth = (rng.random((15, 6)) > 0.4).astype(int)
        previous = None
        for k in range(6, 0, -1):
            correct = top_k_correct(truth, proba, k)
            if previous is not None:
                assert (previous <= correct).all()
            previous = correct
