"""Feature extraction from enhanced ASTs (§III-B)."""

from repro.features.extractor import FeatureExtractor, PairedFeatureExtractor
from repro.features.fastpath import (
    TOKEN_STATIC_FEATURES,
    TokenFeatureExtractor,
    compute_token_static_features,
)
from repro.features.ngrams import ast_ngram_vector, ast_unit_sequence, byte_ngram_vector
from repro.features.static_features import compute_static_features

__all__ = [
    "FeatureExtractor",
    "PairedFeatureExtractor",
    "TOKEN_STATIC_FEATURES",
    "TokenFeatureExtractor",
    "ast_ngram_vector",
    "ast_unit_sequence",
    "byte_ngram_vector",
    "compute_static_features",
    "compute_token_static_features",
]
