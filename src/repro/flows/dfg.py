"""Data-flow edges between ``Identifier`` nodes.

Per the paper (§III-A): *"we only consider data flows on Identifier nodes,
i.e., there is a data flow between two Identifier nodes if and only if a
variable is defined at the source node and used at the destination node."*

Definition sites are declaration identifiers and assignment targets (from
the scope analysis); use sites are value references of the same binding.
A configurable timeout mirrors the paper's two-minute limit: when exceeded,
the enhanced AST keeps control flow only.
"""

from __future__ import annotations

import time

from repro.js.ast_nodes import Node
from repro.js.scope import Scope, analyze_scopes


class DataFlowEdge:
    """One def→use edge between two Identifier nodes of the same binding."""

    __slots__ = ("source", "target", "name")

    def __init__(self, source: Node, target: Node, name: str) -> None:
        self.source = source
        self.target = target
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"DF({self.name}: {self.source.start}->{self.target.start})"


class DataFlowTimeout(Exception):
    """Raised internally when edge construction exceeds the time budget."""


#: How many def→use pairs to emit between deadline checks.
_DEADLINE_CHECK_INTERVAL = 1024


def build_data_flow(
    program: Node,
    scope: Scope | None = None,
    timeout: float = 120.0,
    max_edges_per_binding: int = 4096,
) -> list[DataFlowEdge] | None:
    """Build def→use edges; returns ``None`` on timeout (CF-only fallback).

    ``max_edges_per_binding`` bounds the quadratic blow-up for bindings with
    thousands of definitions and uses (seen in machine-generated code).
    """
    if scope is None:
        scope = analyze_scopes(program)
    deadline = time.monotonic() + timeout
    edges: list[DataFlowEdge] = []
    # The deadline check is amortized: ``time.monotonic`` is far more
    # expensive than appending one edge, so it runs once per binding and
    # then once per block of def×use pairs instead of per definition.
    budget = _DEADLINE_CHECK_INTERVAL
    try:
        for binding in scope.iter_all_bindings():
            if not binding.assignments or not binding.references:
                continue
            if time.monotonic() > deadline:
                raise DataFlowTimeout
            count = 0
            for definition in binding.assignments:
                for use in binding.references:
                    if use is definition:
                        continue
                    edges.append(DataFlowEdge(definition, use, binding.name))
                    count += 1
                    budget -= 1
                    if budget <= 0:
                        budget = _DEADLINE_CHECK_INTERVAL
                        if time.monotonic() > deadline:
                            raise DataFlowTimeout
                    if count >= max_edges_per_binding:
                        break
                if count >= max_edges_per_binding:
                    break
    except DataFlowTimeout:
        # CF-only fallback: nodes must not keep partial data_in/data_out
        # lists, so annotation happens only after a complete build.
        return None
    for edge in edges:
        source, target = edge.source, edge.target
        out = getattr(source, "data_out", None)
        if out is None:
            source.data_out = out = []
        out.append(edge)
        inbound = getattr(target, "data_in", None)
        if inbound is None:
            target.data_in = inbound = []
        inbound.append(edge)
    return edges
