"""Benchmark: Figure 4 / rank studies — popularity vs. transformation."""

import numpy as np

from repro.experiments import fig4


def test_fig4_alexa_rank(benchmark, context):
    result = benchmark.pedantic(
        fig4.run_alexa_ranks, args=(context,), kwargs={"n_scripts": 200}, rounds=1, iterations=1
    )
    rates = result["rates"]
    print(f"\nAlexa rates by rank group: { {g: round(r, 2) for g, r in rates.items()} }")
    # Paper: popular sites are *more* transformed (80% top-1k vs 72% at the
    # 10k edge) — at bench scale we require a non-increasing trend overall.
    groups = sorted(rates)
    first_half = np.mean([rates[g] for g in groups[: len(groups) // 2]])
    second_half = np.mean([rates[g] for g in groups[len(groups) // 2 :]])
    assert first_half >= second_half - 0.12


def test_fig4_npm_rank(benchmark, context):
    result = benchmark.pedantic(
        fig4.run_npm_ranks, args=(context,), kwargs={"n_scripts": 400}, rounds=1, iterations=1
    )
    rates = result["rates"]
    print(f"\nnpm rates by rank group: { {g: round(r, 2) for g, r in rates.items()} }")
    # Paper: top-1k packages are 2.4–4.4× LESS transformed than the rest.
    top = rates[0]
    rest = np.mean([rate for group, rate in rates.items() if group >= 1])
    assert top <= rest
    split = result["minification_split"]
    print(f"minification split: {split}")
    # The tail privileges simple minification over advanced (58% vs 37%).
    assert split["top_5k_plus"]["simple_share"] > split["top_5k_plus"]["advanced_share"]
