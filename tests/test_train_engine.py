"""Tests for the parallel histogram-forest training engine.

Covers the PR-2 guarantees: parallel-vs-serial bit identity, packed
flat-array inference equality with the per-tree loop, shared-binner
chain fast paths, and Binner edge-case behaviour.
"""

import pickle

import numpy as np
import pytest

from repro.ml import (
    Binner,
    BinaryRelevance,
    ClassifierChain,
    PackedForest,
    RandomForestClassifier,
)
from repro.ml.binning import bin_column, column_edges
from repro.ml.forest import ForestSpec


def make_separable(n: int = 300, d: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


def assert_trees_equal(forest_a, forest_b):
    assert len(forest_a.trees_) == len(forest_b.trees_)
    for a, b in zip(forest_a.trees_, forest_b.trees_):
        assert np.array_equal(a.feature_, b.feature_)
        assert np.array_equal(a.threshold_, b.threshold_)
        assert np.array_equal(a.left_, b.left_)
        assert np.array_equal(a.right_, b.right_)
        assert np.array_equal(a.value_, b.value_)


class TestParallelBitIdentity:
    def test_parallel_forest_bit_identical_to_serial(self):
        X, y = make_separable()
        serial = RandomForestClassifier(n_estimators=6, random_state=3, n_jobs=1)
        parallel = RandomForestClassifier(n_estimators=6, random_state=3, n_jobs=2)
        serial.fit(X, y)
        parallel.fit(X, y)
        assert_trees_equal(serial, parallel)
        assert np.array_equal(serial.predict_proba(X), parallel.predict_proba(X))
        assert np.array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )

    def test_parallel_chain_bit_identical_to_serial(self):
        X, y = make_separable(200, d=8, seed=1)
        Y = np.column_stack([y, (X[:, 2] > 0).astype(int)])
        proba = []
        for jobs in (1, 2):
            chain = ClassifierChain(
                2, factory=ForestSpec(n_estimators=4, random_state=5, n_jobs=jobs)
            )
            proba.append(chain.fit(X, Y).predict_proba(X))
        assert np.array_equal(proba[0], proba[1])

    def test_negative_n_jobs_resolves_to_cpu_count(self):
        X, y = make_separable(80, seed=2)
        forest = RandomForestClassifier(n_estimators=3, random_state=0, n_jobs=-1)
        forest.fit(X, y)
        assert len(forest.trees_) == 3

    def test_forest_spec_threads_n_jobs(self):
        spec = ForestSpec(n_estimators=3, random_state=1, n_jobs=4)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone().n_jobs == 4

    def test_wrapper_n_jobs_override(self):
        model = BinaryRelevance(2, factory=ForestSpec(n_estimators=2), n_jobs=3)
        classifiers = model._make_classifiers()
        assert all(clf.n_jobs == 3 for clf in classifiers)


class TestPackedInference:
    def test_packed_matches_per_tree_loop(self):
        X, y = make_separable(400, seed=4)
        forest = RandomForestClassifier(n_estimators=8, random_state=7).fit(X, y)
        X_binned = forest.binner_.transform(X)
        loop = np.zeros(len(X))
        for tree in forest.trees_:
            loop += tree.predict_proba(X_binned)
        loop /= len(forest.trees_)
        packed = forest.predict_proba(X)
        assert np.allclose(loop, packed, rtol=0, atol=1e-12)

    def test_packed_rebuilds_lazily(self):
        X, y = make_separable(150, seed=5)
        forest = RandomForestClassifier(n_estimators=4, random_state=2).fit(X, y)
        expected = forest.predict_proba(X)
        forest.packed_ = None  # simulate a pre-packed-layout pickle
        assert np.array_equal(forest.predict_proba(X), expected)
        assert isinstance(forest.packed_, PackedForest)

    def test_packed_counts_and_offsets(self):
        X, y = make_separable(120, seed=6)
        forest = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        packed = forest.packed_
        assert packed.n_trees_ == 5
        assert packed.node_count == sum(t.node_count for t in forest.trees_)
        assert packed.roots_[0] == 0
        assert (np.diff(packed.roots_) > 0).all()

    def test_packed_empty_input(self):
        X, y = make_separable(60, seed=7)
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert forest.predict_proba(np.zeros((0, X.shape[1]))).shape == (0,)

    def test_packed_forest_survives_pickle(self):
        X, y = make_separable(100, seed=8)
        forest = RandomForestClassifier(n_estimators=3, random_state=9).fit(X, y)
        clone = pickle.loads(pickle.dumps(forest))
        assert np.array_equal(clone.predict_proba(X), forest.predict_proba(X))


class TestSharedBinnerFastPath:
    def test_chain_shares_base_edges(self):
        X, y = make_separable(200, d=6, seed=9)
        Y = np.column_stack([y, 1 - y, (X[:, 3] > 0).astype(int)])
        chain = ClassifierChain(3, factory=ForestSpec(n_estimators=3, random_state=0))
        chain.fit(X, Y)
        base_edges = chain.classifiers_[0].binner_.edges_
        for position, clf in enumerate(chain.classifiers_):
            assert len(clf.binner_.edges_) == X.shape[1] + position
            for col in range(X.shape[1]):
                assert clf.binner_.edges_[col] is base_edges[col]

    def test_binary_relevance_shares_one_binner(self):
        X, y = make_separable(150, seed=10)
        Y = np.column_stack([y, 1 - y])
        model = BinaryRelevance(2, factory=ForestSpec(n_estimators=3, random_state=0))
        model.fit(X, Y)
        assert model.classifiers_[0].binner_ is model.classifiers_[1].binner_
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)

    def test_chain_handles_degenerate_label_column(self):
        X, y = make_separable(100, seed=11)
        Y = np.column_stack([np.zeros_like(y), y])  # first label constant
        chain = ClassifierChain(2, factory=ForestSpec(n_estimators=3, random_state=1))
        chain.fit(X, Y)
        proba = chain.predict_proba(X)
        assert (proba[:, 0] == 0.0).all()
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_chain_fast_inference_matches_generic(self):
        X, y = make_separable(150, d=5, seed=12)
        Y = np.column_stack([y, (X[:, 1] > 0).astype(int)])
        chain = ClassifierChain(2, factory=ForestSpec(n_estimators=4, random_state=3))
        chain.fit(X, Y)
        fast = chain.predict_proba(X)
        # The generic float-matrix path must agree: same forests, same
        # appended thresholded predictions, only the binning route differs.
        n, d = X.shape
        augmented = np.empty((n, d + 1))
        augmented[:, :d] = X
        expected = np.zeros((n, 2))
        expected[:, 0] = chain.classifiers_[0].predict_proba(augmented[:, :d])
        augmented[:, d] = (expected[:, 0] >= 0.5).astype(np.float64)
        expected[:, 1] = chain.classifiers_[1].predict_proba(augmented)
        assert np.allclose(fast, expected, rtol=0, atol=1e-12)


class TestBinnerEdgeCases:
    def test_all_nan_column_gets_empty_edges(self):
        X = np.column_stack([np.full(20, np.nan), np.arange(20.0)])
        binner = Binner(max_bins=8).fit(X)
        assert binner.edges_[0].size == 0
        assert binner.edges_[1].size > 0
        binned = binner.transform(X)
        assert (binned[:, 0] == 0).all()

    def test_constant_column_single_bin(self):
        X = np.column_stack([np.full(30, 7.5), np.arange(30.0)])
        binner = Binner(max_bins=8).fit(X)
        assert binner.n_bins_[0] == 1
        assert (binner.transform(X)[:, 0] == 0).all()

    def test_inf_values_masked_from_edges(self):
        column = np.array([-np.inf, 1.0, 2.0, 3.0, 4.0, np.inf])
        X = column.reshape(-1, 1)
        binner = Binner(max_bins=4).fit(X)
        assert np.isfinite(binner.edges_[0]).all()
        binned = binner.transform(X)
        assert binned[0, 0] == 0  # -inf clamps to the lowest bin
        assert binned[-1, 0] == binner.n_bins_[0] - 1  # +inf to the highest

    def test_vectorised_fit_matches_per_column_reference(self):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(200, 6))
        X[rng.random(size=X.shape) < 0.05] = np.nan
        X[:5, 2] = np.inf
        X[:, 4] = 3.25  # constant
        X[:, 5] = np.nan  # all-NaN
        binner = Binner(max_bins=16).fit(X)
        for col in range(X.shape[1]):
            expected = column_edges(X[:, col], 16)
            assert np.array_equal(binner.edges_[col], expected)

    def test_bin_column_empty_edges(self):
        assert (bin_column(np.array([1.0, 2.0]), np.empty(0)) == 0).all()

    def test_empty_matrix(self):
        binner = Binner(max_bins=4).fit(np.zeros((0, 3)))
        assert all(edges.size == 0 for edges in binner.edges_)


class TestTreeKernel:
    def test_sample_weight_equals_materialised_bootstrap(self):
        from repro.ml import DecisionTreeClassifier

        X, y = make_separable(200, seed=14)
        binned = Binner(max_bins=16).fit_transform(X)
        rng = np.random.default_rng(0)
        sample = rng.integers(0, len(y), size=len(y))
        weight = np.bincount(sample, minlength=len(y)).astype(np.float64)
        weighted = DecisionTreeClassifier(
            max_features=None, rng=np.random.default_rng(1)
        ).fit(binned, y, sample_weight=weight)
        materialised = DecisionTreeClassifier(
            max_features=None, rng=np.random.default_rng(1)
        ).fit(binned[np.sort(sample)], y[np.sort(sample)])
        assert np.array_equal(
            weighted.predict_proba(binned), materialised.predict_proba(binned)
        )

    def test_depth_recorded(self):
        from repro.ml import DecisionTreeClassifier

        X, y = make_separable(400, seed=15)
        binned = Binner().fit_transform(X)
        tree = DecisionTreeClassifier(max_depth=4, max_features=None).fit(binned, y)
        assert 0 < tree.depth_ <= 4

    def test_empty_training_set_raises(self):
        from repro.ml import DecisionTreeClassifier

        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))
