"""Scan coordinator: manifest sharding and work-stealing dispatch.

The coordinator drains the ingestion stream exactly once, deduplicates
on content hash as units flow past, probes the content-addressed store
(incremental mode skips every hash an identical engine already
classified), and packs the remaining *miss* units into fixed-size
shards.  Shards go to a process pool through one shared queue — many
more shards than workers, so an idle worker always pulls the next
unclaimed shard (work stealing via global queue) and a straggler shard
never idles the rest of the pool.  ``n_workers=1`` processes shards
in-process through the identical code path.

Memory stays bounded at crawl scale: sources live only inside the
in-flight shard buffers (at most ``n_workers * PIPELINE_DEPTH + 1``
shards), while the global dedupe set holds hashes, not sources.

Crash story: unit durability lives in the store (atomic per-unit puts
by the workers), the manifest streams to disk as ingestion proceeds,
and shard logs carry periodic checkpoint records.  Re-running the same
scan after a kill — or over an unchanged corpus — skips every persisted
hash and completes only the remainder; the merged report is
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.corpus.filters import MAX_BYTES
from repro.detector.level2 import DEFAULT_K, DEFAULT_THRESHOLD
from repro.scan.manifest import ScanUnit, iter_ingest
from repro.scan.progress import ScanMetrics
from repro.scan.store import ResultStore
from repro.scan.worker import (
    ShardOutcome,
    ShardTask,
    ShardWorker,
    WorkerConfig,
    _init_worker,
    _process_shard,
)

#: in-flight shards per worker before the coordinator back-pressures.
PIPELINE_DEPTH = 4


@dataclass
class ScanConfig:
    """Everything one scan run needs (CLI flags map 1:1 onto this)."""

    roots: list[str]
    store: str
    model_path: str | None = None  #: ``None`` => model-free rules-only scan
    triage: str = "off"  #: engine triage mode when a model is present
    deob: bool = False
    fingerprint: bool = True
    n_workers: int = 1
    shard_size: int = 256
    incremental: bool = True  #: probe the store and skip identical-engine hits
    k: int = DEFAULT_K
    threshold: float = DEFAULT_THRESHOLD
    max_source_bytes: int | None = MAX_BYTES
    checkpoint_every: int = 32
    on_shard: Callable[[ShardOutcome, ScanMetrics], Any] | None = None


@dataclass
class ScanStats:
    """Aggregate counters for one scan run (progress + acceptance)."""

    units_seen: int = 0  #: manifest unit events, duplicates included
    unique: int = 0  #: distinct content hashes
    duplicates: int = 0
    skipped_store: int = 0  #: unique hashes skipped via the store
    scanned: int = 0  #: unique hashes classified this run
    ok: int = 0
    errors: int = 0
    triaged: int = 0
    deob_changed: int = 0
    external_refs: int = 0
    ingest_errors: int = 0
    shards: int = 0
    wall_time: float = 0.0
    error_kinds: dict[str, int] = field(default_factory=dict)

    @property
    def skip_rate(self) -> float:
        """Fraction of unique hashes the store answered (incremental hit rate)."""
        return self.skipped_store / self.unique if self.unique else 0.0

    @property
    def files_per_sec(self) -> float:
        return self.scanned / self.wall_time if self.wall_time else 0.0

    def __str__(self) -> str:
        return (
            f"{self.units_seen} units ({self.unique} unique, "
            f"{self.skipped_store} skipped via store, {self.scanned} scanned: "
            f"{self.ok} ok / {self.errors} errors) in {self.wall_time:.2f}s "
            f"across {self.shards} shard(s)"
        )


def _digest_file(path: str | Path) -> str:
    """Short content digest of a model artifact (engine-key component)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()[:16]


class ScanCoordinator:
    """Drive one scan run: ingest → dedupe → probe store → shard → merge-ready."""

    def __init__(self, config: ScanConfig, metrics: ScanMetrics | None = None) -> None:
        self.config = config
        self.metrics = metrics or ScanMetrics()
        self.store = ResultStore(config.store)
        self.worker_config = WorkerConfig(
            store_root=str(config.store),
            model_path=config.model_path,
            model_digest=(
                _digest_file(config.model_path) if config.model_path else ""
            ),
            triage=config.triage if config.model_path else "only",
            deob=config.deob,
            fingerprint=config.fingerprint,
            k=config.k,
            threshold=config.threshold,
            max_source_bytes=config.max_source_bytes,
            checkpoint_every=config.checkpoint_every,
        )

    @property
    def engine_key(self) -> str:
        return self.worker_config.engine_key

    # -- shard plumbing --------------------------------------------------------

    def _fold(self, outcome: ShardOutcome, stats: ScanStats) -> None:
        stats.shards += 1
        stats.scanned += outcome.units
        stats.ok += outcome.ok
        stats.errors += outcome.errors
        stats.triaged += outcome.triaged
        stats.deob_changed += outcome.deob_changed
        for kind, count in outcome.error_kinds.items():
            stats.error_kinds[kind] = stats.error_kinds.get(kind, 0) + count
        metrics = self.metrics
        metrics.inc("scan_shards_done_total")
        metrics.inc("scan_units_scanned_total", outcome.units)
        metrics.inc("scan_units_ok_total", outcome.ok)
        metrics.inc("scan_unit_errors_total", outcome.errors)
        metrics.inc("scan_units_triaged_total", outcome.triaged)
        if self.config.on_shard is not None:
            try:
                self.config.on_shard(outcome, metrics)
            except Exception:  # noqa: BLE001 - observability must not kill a scan
                pass

    def run(self) -> ScanStats:
        """Execute the scan; returns aggregate stats (results are in the store)."""
        config = self.config
        stats = ScanStats()
        t0 = time.perf_counter()
        run_dir = self.store.next_run_dir()
        engine_key = self.engine_key

        seen: set[str] = set()
        buffer: list[ScanUnit] = []
        shard_index = 0

        executor: ProcessPoolExecutor | None = None
        pending: set[Future] = set()
        serial_worker: ShardWorker | None = None
        if config.n_workers > 1:
            executor = ProcessPoolExecutor(
                max_workers=config.n_workers,
                initializer=_init_worker,
                initargs=(self.worker_config,),
            )
        else:
            serial_worker = ShardWorker(self.worker_config)

        def dispatch() -> None:
            nonlocal shard_index
            if not buffer:
                return
            task = ShardTask(
                index=shard_index,
                units=tuple(buffer),
                log_path=str(run_dir / f"shard-{shard_index:04d}.jsonl"),
            )
            shard_index += 1
            buffer.clear()
            self.metrics.inc("scan_shards_total")
            if executor is None:
                assert serial_worker is not None
                self._fold(serial_worker.process(task), stats)
            else:
                pending.add(executor.submit(_process_shard, task))

        def drain(max_pending: int) -> None:
            while len(pending) > max_pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    pending.discard(future)
                    self._fold(future.result(), stats)

        try:
            with self.store.open_manifest_writer() as manifest:
                for event_kind, payload in iter_ingest(
                    config.roots, max_bytes=config.max_source_bytes or MAX_BYTES
                ):
                    manifest.write(payload.provenance())
                    if event_kind == "external":
                        stats.external_refs += 1
                        self.metrics.inc("scan_external_refs_total")
                        continue
                    if event_kind == "error":
                        stats.ingest_errors += 1
                        self.metrics.inc("scan_ingest_errors_total")
                        continue
                    unit = payload
                    stats.units_seen += 1
                    self.metrics.inc("scan_units_total")
                    if unit.sha256 in seen:
                        stats.duplicates += 1
                        continue
                    seen.add(unit.sha256)
                    stats.unique += 1
                    if config.incremental and self.store.has(unit.sha256, engine_key):
                        stats.skipped_store += 1
                        self.metrics.inc("scan_store_hits_total")
                        continue
                    buffer.append(unit)
                    if len(buffer) >= config.shard_size:
                        dispatch()
                        if executor is not None:
                            drain(config.n_workers * PIPELINE_DEPTH)
                dispatch()
                drain(0)
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)

        stats.wall_time = time.perf_counter() - t0
        self.metrics.set_gauge("scan_skip_rate", round(stats.skip_rate, 6))
        self.metrics.set_gauge("scan_files_per_sec", round(stats.files_per_sec, 3))
        return stats
