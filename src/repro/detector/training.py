"""Training-set construction following §III-D.

The paper collects 21,000 regular scripts, transforms each with all ten
techniques (stored separately), then samples balanced training sets:

- level 1: equal thirds regular / minified / obfuscated, the minified
  third split equally over the 2 minification techniques and the
  obfuscated third over the 8 obfuscation techniques;
- level 2: an equal number of samples per technique.

:class:`TrainingData` reproduces that protocol at a configurable scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.corpus.generator import generate_corpus
from repro.detector.labels import level1_vector, level1_labels_for, level2_vector
from repro.transform.base import (
    MINIFICATION_TECHNIQUES,
    OBFUSCATION_TECHNIQUES,
    TECHNIQUES,
    Technique,
    get_transformer,
)


@dataclass
class LabeledSet:
    """Sources with aligned multi-hot label matrix."""

    sources: list[str]
    Y: np.ndarray

    def __len__(self) -> int:
        return len(self.sources)


@dataclass
class TrainingData:
    """The §III-D pools: regular scripts and their 10 transformed variants."""

    regular: list[str]
    variants: dict[Technique, list[tuple[str, frozenset]]] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def build(
        cls,
        n_regular: int = 120,
        seed: int = 0,
        regular_sources: list[str] | None = None,
    ) -> "TrainingData":
        """Generate the regular pool and transform it with every technique."""
        regular = (
            list(regular_sources)
            if regular_sources is not None
            else generate_corpus(n_regular, seed=seed)
        )
        rng = random.Random(seed + 1)
        variants: dict[Technique, list[tuple[str, frozenset]]] = {}
        for technique in TECHNIQUES:
            transformer = get_transformer(technique)
            pool: list[tuple[str, frozenset]] = []
            for source in regular:
                transformed = transformer.transform(source, rng)
                pool.append((transformed, transformer.labels))
            variants[technique] = pool
        return cls(regular=regular, variants=variants, seed=seed)

    # -- balanced samples ------------------------------------------------------

    def level1_set(
        self,
        per_class: int,
        rng: random.Random,
        exclude: set[int] | None = None,
    ) -> LabeledSet:
        """Equal thirds regular/minified/obfuscated (§III-D2)."""
        indices = [i for i in range(len(self.regular)) if not exclude or i not in exclude]
        sources: list[str] = []
        rows: list[np.ndarray] = []
        chosen = rng.sample(indices, min(per_class, len(indices)))
        for index in chosen:
            sources.append(self.regular[index])
            rows.append(level1_vector({"regular"}))
        minification = sorted(MINIFICATION_TECHNIQUES, key=lambda t: t.value)
        per_min = max(1, per_class // len(minification))
        for technique in minification:
            for index in rng.sample(indices, min(per_min, len(indices))):
                transformed, labels = self.variants[technique][index]
                sources.append(transformed)
                rows.append(level1_vector(level1_labels_for(labels)))
        obfuscation = sorted(OBFUSCATION_TECHNIQUES, key=lambda t: t.value)
        per_obf = max(1, per_class // len(obfuscation))
        for technique in obfuscation:
            for index in rng.sample(indices, min(per_obf, len(indices))):
                transformed, labels = self.variants[technique][index]
                sources.append(transformed)
                rows.append(level1_vector(level1_labels_for(labels)))
        return LabeledSet(sources, np.vstack(rows))

    def level2_set(
        self,
        per_technique: int,
        rng: random.Random,
        exclude: set[int] | None = None,
    ) -> LabeledSet:
        """Equal samples per technique (§III-D2, level 2)."""
        indices = [i for i in range(len(self.regular)) if not exclude or i not in exclude]
        sources: list[str] = []
        rows: list[np.ndarray] = []
        for technique in TECHNIQUES:
            for index in rng.sample(indices, min(per_technique, len(indices))):
                transformed, labels = self.variants[technique][index]
                sources.append(transformed)
                rows.append(level2_vector(labels))
        return LabeledSet(sources, np.vstack(rows))
