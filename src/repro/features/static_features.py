"""Hand-picked syntactic features (§III-B).

Implements the features the paper describes plus the per-technique
indicators its in-depth study of the ten transformation techniques calls
for: generic structure ratios (AST depth/breadth per line, node-type
proportions), minification signals (identifier length, characters per
line, ternary proportion), obfuscation signals (dot-vs-bracket ratio,
array sizes, variables fetched from arrays via data flows, escape density,
built-in usage), and logic-structure signals (switch-in-loop dispatchers,
opaque literal branches, unused bindings).

Every feature is a finite float; the ordered name list is exported so the
vector space has one consistent dimension per feature.
"""

from __future__ import annotations

import math
import re
from collections import Counter

from repro.flows.graph import EnhancedAST
from repro.js.ast_nodes import Node, iter_child_nodes
from repro.js.tokens import TokenType
from repro.js.visitor import walk

_HEX_NAME_RE = re.compile(r"^_0x[0-9a-fA-F]+$")

_STRING_OP_NAMES = (
    "split",
    "concat",
    "join",
    "reverse",
    "replace",
    "charAt",
    "charCodeAt",
    "fromCharCode",
    "substr",
    "substring",
    "slice",
    "toString",
)

_SUSPICIOUS_BUILTINS = (
    "eval",
    "unescape",
    "escape",
    "atob",
    "btoa",
    "setInterval",
    "setTimeout",
    "parseInt",
    "Function",
)

_COUNTED_NODE_TYPES = (
    "Literal",
    "Identifier",
    "CallExpression",
    "MemberExpression",
    "BinaryExpression",
    "LogicalExpression",
    "ConditionalExpression",
    "UnaryExpression",
    "UpdateExpression",
    "AssignmentExpression",
    "SequenceExpression",
    "VariableDeclaration",
    "VariableDeclarator",
    "FunctionDeclaration",
    "FunctionExpression",
    "ArrowFunctionExpression",
    "IfStatement",
    "ForStatement",
    "WhileStatement",
    "DoWhileStatement",
    "SwitchStatement",
    "SwitchCase",
    "TryStatement",
    "CatchClause",
    "ArrayExpression",
    "ObjectExpression",
    "Property",
    "NewExpression",
    "ReturnStatement",
    "BlockStatement",
    "ExpressionStatement",
    "ThrowStatement",
    "DebuggerStatement",
    "TemplateLiteral",
    "SpreadElement",
    "ClassDeclaration",
)


def _entropy(text: str) -> float:
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def _safe_div(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def compute_static_features(enhanced: EnhancedAST) -> dict[str, float]:
    """All hand-picked features for one enhanced AST, keyed by name."""
    source = enhanced.source
    program = enhanced.program
    features: dict[str, float] = {}

    # ---- source text ------------------------------------------------------
    n_chars = len(source)
    lines = source.split("\n")
    n_lines = len(lines)
    features["src_chars"] = float(n_chars)
    features["src_lines"] = float(n_lines)
    features["src_avg_line_length"] = _safe_div(n_chars, n_lines)
    features["src_max_line_length"] = float(max((len(l) for l in lines), default=0))
    whitespace = sum(1 for ch in source if ch in " \t\n\r")
    features["src_whitespace_ratio"] = _safe_div(whitespace, n_chars)
    alnum = sum(1 for ch in source if ch.isalnum())
    features["src_non_alnum_ratio"] = 1.0 - _safe_div(alnum, n_chars)
    jsfuck_chars = sum(1 for ch in source if ch in "[]()!+")
    features["src_jsfuck_char_ratio"] = _safe_div(jsfuck_chars, n_chars)
    comment_chars = sum(len(c.value) for c in enhanced.comments)
    features["src_comment_ratio"] = _safe_div(comment_chars, n_chars)
    features["src_comments_per_line"] = _safe_div(len(enhanced.comments), n_lines)

    # ---- tokens -----------------------------------------------------------
    tokens = [t for t in enhanced.tokens if t.type is not TokenType.EOF]
    n_tokens = len(tokens)
    features["tok_per_char"] = _safe_div(n_tokens, n_chars)
    by_type = Counter(t.type for t in tokens)
    for token_type, key in (
        (TokenType.IDENTIFIER, "tok_identifier_ratio"),
        (TokenType.PUNCTUATOR, "tok_punctuator_ratio"),
        (TokenType.STRING, "tok_string_ratio"),
        (TokenType.NUMERIC, "tok_numeric_ratio"),
        (TokenType.KEYWORD, "tok_keyword_ratio"),
        (TokenType.REGULAR_EXPRESSION, "tok_regex_ratio"),
    ):
        features[key] = _safe_div(by_type.get(token_type, 0), n_tokens)

    string_tokens = [t for t in tokens if t.type is TokenType.STRING]
    string_chars = sum(len(t.value) for t in string_tokens)
    escape_chars = sum(t.value.count("\\") for t in string_tokens)
    features["str_chars_ratio"] = _safe_div(string_chars, n_chars)
    features["str_escape_density"] = _safe_div(escape_chars, string_chars)
    features["str_avg_length"] = _safe_div(string_chars, len(string_tokens))
    features["str_max_length"] = float(
        max((len(t.value) for t in string_tokens), default=0)
    )

    # ---- AST shape ---------------------------------------------------------
    identifier_nodes: list[Node] = []
    string_literals: list[Node] = []
    arrays: list[Node] = []
    objects: list[Node] = []
    sequences: list[Node] = []
    members: list[Node] = []
    calls: list[Node] = []
    loops: list[Node] = []
    ifs: list[Node] = []
    declarators: list[Node] = []
    bang_number = 0
    flat = enhanced.flat
    if flat is not None:
        # Flat fast path: counts, depth, and breadth reduce to C-speed
        # Counter/max scans over the pre-order arrays; one zip loop
        # collects the per-type work lists.
        type_names = flat.type_names
        depths = flat.depths
        n_nodes = len(type_names)
        node_counts = Counter(type_names)
        level_width = Counter(depths)
        max_depth = max(depths) if n_nodes else 0
        buckets = {
            "Identifier": identifier_nodes.append,
            "ArrayExpression": arrays.append,
            "ObjectExpression": objects.append,
            "SequenceExpression": sequences.append,
            "MemberExpression": members.append,
            "CallExpression": calls.append,
            "NewExpression": calls.append,
            "WhileStatement": loops.append,
            "DoWhileStatement": loops.append,
            "ForStatement": loops.append,
            "IfStatement": ifs.append,
            "VariableDeclarator": declarators.append,
        }
        buckets_get = buckets.get
        for node, kind in zip(flat.nodes, type_names):
            append = buckets_get(kind)
            if append is not None:
                append(node)
            elif kind == "Literal":
                if isinstance(node.value, str):
                    string_literals.append(node)
            elif (
                kind == "UnaryExpression"
                and node.operator == "!"
                and node.argument.type == "Literal"
                and isinstance(node.argument.value, (int, float))
            ):
                bang_number += 1
        # The traversal fallback below visits children right-to-left, so
        # leaf nodes arrive in reverse document order there.  Identifiers
        # and string literals feed order-sensitive float sums (the entropy
        # features); reversing the pre-order collections restores the
        # legacy summation order so both paths stay bit-identical.
        identifier_nodes.reverse()
        string_literals.reverse()
    else:
        node_counts = Counter()
        n_nodes = 0
        max_depth = 0
        level_width = Counter()
        stack: list[tuple[Node, int]] = [(program, 0)]
        while stack:
            node, depth = stack.pop()
            n_nodes += 1
            kind = node.type
            node_counts[kind] += 1
            level_width[depth] += 1
            if depth > max_depth:
                max_depth = depth
            if kind == "Identifier":
                identifier_nodes.append(node)
            elif kind == "Literal":
                if isinstance(node.value, str):
                    string_literals.append(node)
            elif kind == "ArrayExpression":
                arrays.append(node)
            elif kind == "ObjectExpression":
                objects.append(node)
            elif kind == "SequenceExpression":
                sequences.append(node)
            elif kind == "MemberExpression":
                members.append(node)
            elif kind in ("CallExpression", "NewExpression"):
                calls.append(node)
            elif kind in ("WhileStatement", "DoWhileStatement", "ForStatement"):
                loops.append(node)
            elif kind == "IfStatement":
                ifs.append(node)
            elif kind == "VariableDeclarator":
                declarators.append(node)
            elif (
                kind == "UnaryExpression"
                and node.operator == "!"
                and node.argument.type == "Literal"
                and isinstance(node.argument.value, (int, float))
            ):
                bang_number += 1
            for child in iter_child_nodes(node):
                stack.append((child, depth + 1))
    max_breadth = max(level_width.values()) if level_width else 0

    features["ast_nodes"] = float(n_nodes)
    features["ast_depth"] = float(max_depth)
    features["ast_breadth"] = float(max_breadth)
    features["ast_depth_per_line"] = _safe_div(max_depth, n_lines)
    features["ast_breadth_per_line"] = _safe_div(max_breadth, n_lines)
    features["ast_nodes_per_line"] = _safe_div(n_nodes, n_lines)
    features["ast_nodes_per_char"] = _safe_div(n_nodes, n_chars)

    for node_type in _COUNTED_NODE_TYPES:
        features[f"ast_prop_{node_type}"] = _safe_div(node_counts[node_type], n_nodes)

    # ---- identifiers ------------------------------------------------------
    names = [n.name for n in identifier_nodes]
    unique_names = set(names)
    features["id_unique_ratio"] = _safe_div(len(unique_names), len(names))
    features["id_avg_length"] = _safe_div(sum(len(n) for n in names), len(names))
    features["id_single_char_ratio"] = _safe_div(
        sum(1 for n in unique_names if len(n) == 1), len(unique_names)
    )
    features["id_hex_ratio"] = _safe_div(
        sum(1 for n in unique_names if _HEX_NAME_RE.match(n)), len(unique_names)
    )
    features["id_digit_ratio"] = _safe_div(
        sum(1 for n in unique_names if any(c.isdigit() for c in n)), len(unique_names)
    )
    features["id_entropy"] = _entropy("".join(unique_names))
    features["member_per_unique_id"] = _safe_div(
        node_counts["MemberExpression"], len(unique_names)
    )

    # ---- literals ---------------------------------------------------------
    features["lit_string_entropy"] = (
        sum(_entropy(n.value) for n in string_literals) / len(string_literals)
        if string_literals
        else 0.0
    )
    hexish = sum(
        1
        for n in string_literals
        if n.value and all(c in "0123456789abcdefABCDEF" for c in n.value)
    )
    features["lit_hexish_string_ratio"] = _safe_div(hexish, len(string_literals))

    # ---- structures (arrays / objects / ternaries / sequences) ------------
    array_sizes = [len(a.elements) for a in arrays]
    features["arr_count_per_node"] = _safe_div(len(arrays), n_nodes)
    features["arr_avg_size"] = _safe_div(sum(array_sizes), len(array_sizes))
    features["arr_max_size"] = float(max(array_sizes, default=0))
    features["arr_empty_ratio"] = _safe_div(
        sum(1 for s in array_sizes if s == 0), len(array_sizes)
    )
    features["obj_avg_size"] = _safe_div(
        sum(len(o.properties) for o in objects), len(objects)
    )
    statements = sum(
        node_counts[t]
        for t in (
            "ExpressionStatement",
            "VariableDeclaration",
            "ReturnStatement",
            "IfStatement",
            "ForStatement",
            "WhileStatement",
            "BlockStatement",
        )
    )
    features["ternary_per_statement"] = _safe_div(
        node_counts["ConditionalExpression"], statements
    )
    features["seq_avg_length"] = _safe_div(
        sum(len(s.expressions) for s in sequences), len(sequences)
    )
    features["bang_number_ratio"] = _safe_div(bang_number, n_nodes)

    # ---- member access style ---------------------------------------------
    computed = sum(1 for m in members if m.get("computed"))
    features["member_bracket_ratio"] = _safe_div(computed, len(members))
    features["member_per_node"] = _safe_div(len(members), n_nodes)

    # ---- calls and built-ins ----------------------------------------------
    string_op_counts = Counter()
    builtin_counts = Counter()
    constructor_access = 0
    for call_node in calls:
        callee = call_node.callee
        if callee.type == "Identifier":
            if callee.name in _SUSPICIOUS_BUILTINS:
                builtin_counts[callee.name] += 1
        elif callee.type == "MemberExpression":
            prop = callee.property
            prop_name = None
            if not callee.get("computed") and prop.type == "Identifier":
                prop_name = prop.name
            elif callee.get("computed") and prop.type == "Literal" and isinstance(prop.value, str):
                prop_name = prop.value
            if prop_name in _STRING_OP_NAMES:
                string_op_counts[prop_name] += 1
    for member_node in members:
        prop = member_node.property
        if (
            not member_node.get("computed")
            and prop.type == "Identifier"
            and prop.name == "constructor"
        ) or (
            member_node.get("computed")
            and prop.type == "Literal"
            and prop.value == "constructor"
        ):
            constructor_access += 1
    features["calls_per_node"] = _safe_div(len(calls), n_nodes)
    features["string_ops_per_call"] = _safe_div(
        sum(string_op_counts.values()), len(calls)
    )
    for op in ("split", "fromCharCode", "reverse", "join", "charCodeAt", "replace"):
        features[f"op_{op}_per_node"] = _safe_div(string_op_counts[op], n_nodes)
    for builtin in _SUSPICIOUS_BUILTINS:
        features[f"builtin_{builtin}"] = float(builtin_counts[builtin] > 0)
    features["builtin_eval_per_node"] = _safe_div(builtin_counts["eval"], n_nodes)
    features["constructor_access_per_node"] = _safe_div(constructor_access, n_nodes)
    features["debugger_per_node"] = _safe_div(node_counts["DebuggerStatement"], n_nodes)

    # ---- logic-structure signals ------------------------------------------
    while_true = 0
    switch_in_loop = 0
    literal_test_ifs = 0
    for node in loops:
        test = node.get("test")
        if test is not None and (
            (test.type == "Literal" and test.value is True)
            or (
                test.type == "UnaryExpression"
                and test.operator == "!"
                and test.argument.type == "Literal"
            )
        ):
            while_true += 1
        body = node.get("body")
        if body is not None:
            direct = body.body if body.type == "BlockStatement" else [body]
            if any(s.type == "SwitchStatement" for s in direct):
                switch_in_loop += 1
    for node in ifs:
        test = node.test
        if test.type == "Literal" or (
            test.type == "BinaryExpression"
            and test.left.type == "Literal"
            and test.right.type == "Literal"
        ):
            literal_test_ifs += 1
    features["while_true_per_node"] = _safe_div(while_true, n_nodes)
    features["switch_dispatch_per_node"] = _safe_div(switch_in_loop, n_nodes)
    features["cff_dispatch_present"] = float(switch_in_loop > 0)
    features["opaque_if_per_node"] = _safe_div(literal_test_ifs, n_nodes)
    switch_count = node_counts["SwitchStatement"]
    features["cases_per_switch"] = _safe_div(node_counts["SwitchCase"], switch_count)

    # ---- scope / flow features ---------------------------------------------
    bindings = list(enhanced.scope.iter_all_bindings())
    local_bindings = [b for b in bindings if b.kind != "global"]
    unused = sum(1 for b in local_bindings if not b.references)
    features["bind_local_count"] = float(len(local_bindings))
    features["bind_unused_ratio"] = _safe_div(unused, len(local_bindings))
    features["cf_edges_per_node"] = _safe_div(len(enhanced.control_flow), n_nodes)
    if enhanced.data_flow is not None:
        features["df_edges_per_node"] = _safe_div(len(enhanced.data_flow), n_nodes)
        features["df_available"] = 1.0
    else:
        features["df_edges_per_node"] = 0.0
        features["df_available"] = 0.0

    # Variables fetched from arrays/global dictionaries (data-flow based,
    # per the paper): bindings whose definition reads an indexed structure,
    # weighted by how often their value then flows to a use site.
    _attach_declarator_info(declarators)
    fetched_uses = 0
    total_uses = 0
    array_binding_count = 0
    for binding in local_bindings:
        uses = len(binding.references)
        total_uses += uses
        kinds = {decl.get("decl_init_kind") for decl in binding.declarations}
        if "indexed" in kinds:
            fetched_uses += uses
        if "array" in kinds:
            array_binding_count += 1
    features["df_fetched_from_array_ratio"] = _safe_div(fetched_uses, total_uses)
    features["bind_array_ratio"] = _safe_div(array_binding_count, len(local_bindings))

    return features


def _attach_declarator_info(declarators: list[Node]) -> None:
    """Annotate declaration identifiers with their initialiser kind.

    Sets ``decl_init_kind`` on the pattern identifier:
    ``"array"`` for array-literal inits, ``"indexed"`` for computed member
    reads or single-argument calls (the global-array accessor shape).
    """
    for node in declarators:
        if node.get("init") is None:
            continue
        target = node.id
        if target.type != "Identifier":
            continue
        init = node.init
        if init.type == "ArrayExpression":
            target.decl_init_kind = "array"
        elif init.type == "MemberExpression" and init.get("computed"):
            target.decl_init_kind = "indexed"
        elif init.type == "CallExpression" and len(init.arguments) == 1 and init.arguments[0].type == "Literal":
            target.decl_init_kind = "indexed"


def attach_declarator_info(program: Node) -> None:
    """Public wrapper over :func:`_attach_declarator_info` for a whole tree."""
    _attach_declarator_info([n for n in walk(program) if n.type == "VariableDeclarator"])
