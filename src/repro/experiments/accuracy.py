"""§III-E — detector accuracy on the three ground-truth test sets.

- Test set 1: held-out single-technique samples — level-1 per-class
  accuracy (paper: 98.65% regular / 99.81% obfuscated / 99.71% minified,
  99.69% transformed-vs-regular) and level-2 exact-match (86.95%) plus
  Top-k (Top-1 99.63%).
- Test set 2: mixed-technique samples — level-1 transformed rate
  (paper: 99.99%).
- Test set 3: Dean Edwards-packed samples (the held-out Daft Logic tool) —
  level-1 transformed rate (99.52%) and the Top-4/10% technique report
  (minification advanced+simple, identifier and string obfuscation).
- Regular-corpus check (the paper's Raychev-dataset validation, 98.65%).
"""

from __future__ import annotations

import random

import numpy as np

from repro.corpus.generator import generate_corpus
from repro.detector.labels import (
    LEVEL1_LABELS,
    LEVEL2_LABELS,
    level1_labels_for,
    level1_vector,
    level2_vector,
)
from repro.experiments.common import ExperimentContext
from repro.ml.metrics import exact_match_accuracy, top_k_accuracy
from repro.transform.base import TECHNIQUES, Technique, get_transformer
from repro.transform.packer import pack
from repro.transform.pipeline import TransformationPipeline

#: Combinations used for the mixed test set (§III-E2); 2–4 techniques.
MIXED_COMBINATIONS: list[tuple[Technique, ...]] = [
    (Technique.MINIFICATION_SIMPLE, Technique.IDENTIFIER_OBFUSCATION),
    (Technique.MINIFICATION_ADVANCED, Technique.STRING_OBFUSCATION),
    (Technique.STRING_OBFUSCATION, Technique.GLOBAL_ARRAY),
    (Technique.DEAD_CODE_INJECTION, Technique.CONTROL_FLOW_FLATTENING),
    (Technique.MINIFICATION_SIMPLE, Technique.DEBUG_PROTECTION),
    (
        Technique.MINIFICATION_ADVANCED,
        Technique.STRING_OBFUSCATION,
        Technique.CONTROL_FLOW_FLATTENING,
    ),
    (
        Technique.MINIFICATION_SIMPLE,
        Technique.GLOBAL_ARRAY,
        Technique.DEAD_CODE_INJECTION,
    ),
    (
        Technique.MINIFICATION_ADVANCED,
        Technique.DEAD_CODE_INJECTION,
        Technique.DEBUG_PROTECTION,
        Technique.SELF_DEFENDING,
    ),
]


def _fresh_test_pool(n: int, seed: int) -> list[str]:
    """Regular scripts disjoint (by seed) from any training pool."""
    return generate_corpus(n, seed=seed + 90_000)


def run_test_set_1(context: ExperimentContext, n_per_technique: int = 6, seed: int = 1) -> dict:
    """Held-out single-technique evaluation (§III-E1)."""
    rng = random.Random(seed)
    pool = _fresh_test_pool(max(6, n_per_technique), seed)
    detector = context.detector

    regular_labels = detector.level1.predict_labels(pool)
    level1_class_acc = {"regular": float(np.mean([ls == {"regular"} for ls in regular_labels]))}

    sources, Y1, Y2 = [], [], []
    for technique in TECHNIQUES:
        transformer = get_transformer(technique)
        for source in pool[:n_per_technique]:
            sources.append(transformer.transform(source, rng))
            Y1.append(level1_vector(level1_labels_for(transformer.labels)))
            Y2.append(level2_vector(transformer.labels))
    Y1, Y2 = np.vstack(Y1), np.vstack(Y2)

    level1_pred = detector.level1.predict_labels(sources)
    minified_truth = Y1[:, LEVEL1_LABELS.index("minified")] == 1
    obfuscated_truth = Y1[:, LEVEL1_LABELS.index("obfuscated")] == 1
    minified_pred = np.array([("minified" in ls) for ls in level1_pred])
    obfuscated_pred = np.array([("obfuscated" in ls) for ls in level1_pred])
    level1_class_acc["minified"] = float(
        (minified_pred[minified_truth]).mean() if minified_truth.any() else 1.0
    )
    level1_class_acc["obfuscated"] = float(
        (obfuscated_pred[obfuscated_truth]).mean() if obfuscated_truth.any() else 1.0
    )
    transformed_pred = minified_pred | obfuscated_pred
    transformed_accuracy = float(transformed_pred.mean())

    proba2 = detector.level2.predict_proba(sources)
    exact = exact_match_accuracy(Y2, (proba2 >= 0.5).astype(int))
    top_k = {k: top_k_accuracy(Y2, proba2, k) for k in (1, 2, 3)}
    return {
        "level1_class_accuracy": level1_class_acc,
        "level1_transformed_accuracy": transformed_accuracy,
        "level2_exact_match": exact,
        "level2_top_k": top_k,
        "n_transformed": len(sources),
    }


def run_test_set_2(context: ExperimentContext, n_per_combination: int = 4, seed: int = 2) -> dict:
    """Mixed-technique evaluation (§III-E2)."""
    rng = random.Random(seed)
    pool = _fresh_test_pool(n_per_combination, seed + 1)
    detector = context.detector
    sources, Y2 = [], []
    for combination in MIXED_COMBINATIONS:
        pipeline = TransformationPipeline(combination)
        for source in pool:
            sources.append(pipeline.transform(source, rng))
            Y2.append(level2_vector(pipeline.labels))
    Y2 = np.vstack(Y2)
    transformed = detector.level1.is_transformed(sources)
    proba2 = detector.level2.predict_proba(sources)
    return {
        "level1_transformed_accuracy": float(transformed.mean()),
        "proba": proba2,
        "Y": Y2,
        "n": len(sources),
    }


def run_test_set_3(context: ExperimentContext, n: int = 12, seed: int = 3) -> dict:
    """Dean Edwards packer generalization (§III-E3)."""
    rng = random.Random(seed)
    pool = _fresh_test_pool(n, seed + 2)
    detector = context.detector
    packed = [pack(source, rng) for source in pool]
    transformed = detector.level1.is_transformed(packed)
    proba2 = detector.level2.predict_proba(packed)
    means = proba2.mean(axis=0)
    ranked = sorted(zip(LEVEL2_LABELS, means), key=lambda item: -item[1])
    top4 = [(name, float(p)) for name, p in ranked[:4] if p >= 0.10]
    return {
        "level1_transformed_accuracy": float(transformed.mean()),
        "top4_techniques": top4,
        "n": len(packed),
    }


def run_regular_corpus_check(context: ExperimentContext, n: int = 40, seed: int = 4) -> dict:
    """The paper's independent regular-corpus validation (98.65%)."""
    pool = generate_corpus(n, seed=seed + 70_000)
    labels = context.detector.level1.predict_labels(pool)
    accuracy = float(np.mean([ls == {"regular"} for ls in labels]))
    return {"regular_accuracy": accuracy, "n": n}


def report(ts1: dict, ts2: dict, ts3: dict, regular: dict) -> str:
    """Render the experiment result as the paper-style text block."""
    lines = ["§III-E detector accuracy (paper → measured)"]
    acc = ts1["level1_class_accuracy"]
    lines.append(
        f"  level 1 regular     98.65% -> {acc['regular']:.2%}"
    )
    lines.append(f"  level 1 obfuscated  99.81% -> {acc['obfuscated']:.2%}")
    lines.append(f"  level 1 minified    99.71% -> {acc['minified']:.2%}")
    lines.append(
        f"  level 1 transformed 99.69% -> {ts1['level1_transformed_accuracy']:.2%}"
    )
    lines.append(f"  level 2 exact-match 86.95% -> {ts1['level2_exact_match']:.2%}")
    for k, paper in ((1, "99.63%"), (2, "99.85%"), (3, "98.95%")):
        lines.append(f"  level 2 top-{k}       {paper} -> {ts1['level2_top_k'][k]:.2%}")
    lines.append(
        f"  mixed transformed   99.99% -> {ts2['level1_transformed_accuracy']:.2%}"
    )
    lines.append(
        f"  packer transformed  99.52% -> {ts3['level1_transformed_accuracy']:.2%}"
    )
    lines.append(
        "  packer top-4: "
        + ", ".join(f"{name} ({p:.0%})" for name, p in ts3["top4_techniques"])
    )
    lines.append(
        f"  regular corpus      98.65% -> {regular['regular_accuracy']:.2%}"
    )
    return "\n".join(lines)
