"""The paper's two-level detection pipeline (§III).

- :class:`~repro.detector.level1.Level1Detector` — regular / minified /
  obfuscated multi-task classification (pre-filtering layer),
- :class:`~repro.detector.level2.Level2Detector` — the ten monitored
  transformation techniques with thresholded Top-k prediction,
- :class:`~repro.detector.pipeline.TransformationDetector` — the combined
  facade including §III-D training-set construction.
"""

from repro.detector.batch import (
    BatchFeatures,
    BatchInferenceEngine,
    BatchResult,
    BatchStats,
    DetectionError,
)
from repro.detector.labels import (
    LEVEL1_LABELS,
    LEVEL2_LABELS,
    level1_labels_for,
    level1_vector,
    level2_vector,
)
from repro.detector.level1 import Level1Detector
from repro.detector.level2 import Level2Detector
from repro.detector.pipeline import (
    DetectionResult,
    ModelFormatError,
    TransformationDetector,
)
from repro.detector.training import TrainingData

__all__ = [
    "LEVEL1_LABELS",
    "LEVEL2_LABELS",
    "BatchFeatures",
    "BatchInferenceEngine",
    "BatchResult",
    "BatchStats",
    "DetectionError",
    "DetectionResult",
    "ModelFormatError",
    "Level1Detector",
    "Level2Detector",
    "TrainingData",
    "TransformationDetector",
    "level1_labels_for",
    "level1_vector",
    "level2_vector",
]
