"""Rule engine: full-file analysis and staged rules-only triage.

Two entry points:

- :meth:`RuleEngine.analyze` evaluates the whole catalog against an
  :class:`~repro.flows.graph.EnhancedAST` the pipeline already built —
  this is how findings ride along with feature extraction for free.
- :meth:`RuleEngine.triage` lifts a raw source through the analysis
  stages lazily (text → tokens → AST) and stops as soon as a
  high-confidence signature fires, so obvious files never pay for a
  parse, let alone 4-gram extraction.  An ambiguity gate decides whether
  an undecided file is worth parsing at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.flows.graph import EnhancedAST
from repro.js.tokens import TokenType
from repro.rules.base import STAGE_AST, STAGE_TEXT, STAGE_TOKENS, Rule, stage_order
from repro.rules.catalog import DEFAULT_RULES
from repro.rules.context import RuleContext
from repro.rules.findings import Finding, max_confidence_by_technique

#: Default confidence at which a triage finding counts as decisive.
TRIAGE_THRESHOLD = 0.85

_HEX_IDENT_RE = re.compile(r"^_0x[0-9a-fA-F]+$")

#: Identifier spellings that mark a file as worth parsing during triage:
#: the AST-stage signatures all leave at least one of these in the stream.
_SUSPICIOUS_IDENTIFIERS = frozenset(
    {
        "eval",
        "Function",
        "atob",
        "unescape",
        "execScript",
        "fromCharCode",
        "charCodeAt",
        "debugger",
        "setInterval",
    }
)

#: String-literal payloads of reflective access (``x["constructor"](...)``,
#: ``x["compile"](...)``).  These only count when quoted: the words appear
#: as plain properties in ordinary code, but obfuscators reach them
#: through bracket-string access.
_SUSPICIOUS_STRING_VALUES = frozenset({"constructor", "compile"})

#: A flattened dispatcher's order string: digits joined by pipes, quoted
#: (``"2|0|1"``).  Regular code essentially never contains one, so this
#: is the text-level trigger for the switch-dispatcher parse.
_ORDER_STRING_RE = re.compile(r"""["']\d+(?:\|\d+)+["']""")

#: Raw-text substrings that make lexing worthwhile at all.  The token
#: stage can only ever find hex identifiers (``_0x``), and the ambiguity
#: gate only ever finds these spellings — a file containing none of them
#: is guaranteed undecidable past the text stage, so triage skips the
#: lexer entirely (the dominant cost for clean files).
_LEX_TRIGGERS = ("_0x", "\\x", "\\u") + tuple(_SUSPICIOUS_IDENTIFIERS)


@dataclass
class TriageResult:
    """Outcome of the staged rules-only path for one file.

    ``decided`` means a signature at or above the confidence threshold
    fired and the caller may skip full feature extraction.  ``stage``
    records the deepest analysis layer that was built (``text`` <
    ``tokens`` < ``ast``) — the cost actually paid.  ``error`` is set
    when the file could not be lexed/parsed at the stage it needed
    (``(kind, message)`` in the batch engine's vocabulary).
    """

    findings: list[Finding] = field(default_factory=list)
    stage: str = STAGE_TEXT
    decided: bool = False
    error: tuple[str, str] | None = None

    @property
    def techniques(self) -> dict[str, float]:
        """Strongest finding confidence per technique label."""
        return max_confidence_by_technique(self.findings)


class RuleEngine:
    """Evaluate a rule catalog over files, fully or in staged triage."""

    def __init__(
        self,
        rules: tuple[Rule, ...] | list[Rule] | None = None,
        data_flow_timeout: float = 120.0,
    ) -> None:
        self.rules: tuple[Rule, ...] = tuple(DEFAULT_RULES if rules is None else rules)
        self.data_flow_timeout = data_flow_timeout
        self._by_stage: dict[str, list[Rule]] = {
            STAGE_TEXT: [],
            STAGE_TOKENS: [],
            STAGE_AST: [],
        }
        for rule in self.rules:
            self._by_stage[rule.stage].append(rule)

    # -- full analysis ---------------------------------------------------------

    def analyze(self, enhanced: EnhancedAST) -> list[Finding]:
        """Run every rule against an already-built enhanced AST."""
        return self._evaluate(RuleContext(enhanced=enhanced), self.rules)

    def analyze_source(self, source: str, data_flow: bool = True) -> list[Finding]:
        """Parse ``source`` and run every rule (raises on invalid JS)."""
        ctx = RuleContext(
            source=source,
            data_flow=data_flow,
            data_flow_timeout=self.data_flow_timeout,
        )
        return self._evaluate(ctx, self.rules)

    # -- staged triage -----------------------------------------------------------

    def triage(
        self,
        source: str,
        threshold: float = TRIAGE_THRESHOLD,
        deep: bool | str = "auto",
    ) -> TriageResult:
        """Rules-only verdict for one file, paying for as little as possible.

        Stages run in cost order and stop at the first decisive finding.
        ``deep`` controls the AST stage for files still undecided after
        the token stage: ``True`` always parses, ``False`` never does
        (the pre-filter configuration — the full pipeline will parse
        anyway), and ``"auto"`` parses only when the token stream shows a
        marker one of the AST signatures needs (hex identifiers, dynamic
        code callees, escape-saturated strings, dispatcher vocabulary).
        """
        ctx = RuleContext(
            source=source, data_flow=False, data_flow_timeout=self.data_flow_timeout
        )
        result = TriageResult()

        result.findings.extend(self._evaluate(ctx, self._by_stage[STAGE_TEXT]))
        if self._decisive(result.findings, threshold):
            result.decided = True
            return result

        if not self._worth_lexing(source):
            return result
        try:
            ctx.tokens
        except RecursionError:
            result.error = ("recursion", "token stream exceeds the recursion limit")
            return result
        except (SyntaxError, ValueError) as error:
            result.error = ("parse", str(error) or type(error).__name__)
            return result
        result.stage = STAGE_TOKENS
        result.findings.extend(self._evaluate(ctx, self._by_stage[STAGE_TOKENS]))
        if self._decisive(result.findings, threshold):
            result.decided = True
            return result

        if deep is False or (deep == "auto" and not self._ambiguous(ctx)):
            return result
        try:
            ctx.enhanced
        except RecursionError:
            result.error = ("recursion", "AST nesting exceeds the recursion limit")
            return result
        except (SyntaxError, ValueError) as error:
            result.error = ("parse", str(error) or type(error).__name__)
            return result
        except Exception as error:  # noqa: BLE001 - triage must not raise
            result.error = ("internal", f"{type(error).__name__}: {error}")
            return result
        result.stage = STAGE_AST
        result.findings.extend(self._evaluate(ctx, self._by_stage[STAGE_AST]))
        result.decided = self._decisive(result.findings, threshold)
        return result

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _evaluate(ctx: RuleContext, rules: list[Rule] | tuple[Rule, ...]) -> list[Finding]:
        findings: list[Finding] = []
        for rule in rules:
            findings.extend(rule.evaluate(ctx))
        return findings

    @staticmethod
    def _decisive(findings: list[Finding], threshold: float) -> bool:
        return any(finding.confidence >= threshold for finding in findings)

    @staticmethod
    def _worth_lexing(source: str) -> bool:
        """Text-level gate: could the token stage or the ambiguity gate
        possibly find anything?  Conservative superset — every token-stage
        signal and every :meth:`_ambiguous` trigger implies one of these
        raw substrings, so skipping the lexer on a miss loses nothing."""
        if any(trigger in source for trigger in _LEX_TRIGGERS):
            return True
        if "push" in source and "shift" in source:
            return True  # rotation-loop vocabulary
        if "constructor" in source or "compile" in source:
            return True  # reflective access (string-token check downstream)
        return bool(_ORDER_STRING_RE.search(source))

    @staticmethod
    def _ambiguous(ctx: RuleContext) -> bool:
        """Token-level markers that make the AST stage worth its parse."""
        if any(_HEX_IDENT_RE.match(value) for value in ctx.identifier_values):
            return True
        token_values = {token.value for token in ctx.tokens}
        if token_values & _SUSPICIOUS_IDENTIFIERS:
            return True  # dynamic-code / string-builder / timer vocabulary
        strings = {
            token.value.strip("\"'")
            for token in ctx.tokens
            if token.type is TokenType.STRING
        }
        if strings & _SUSPICIOUS_STRING_VALUES:
            return True  # x["constructor"](...) / x["compile"](...)
        if "switch" in token_values and _ORDER_STRING_RE.search(ctx.source or ""):
            return True  # dispatcher loop with its pipe-joined order string
        if "push" in token_values and "shift" in token_values:
            return True  # rotation-loop vocabulary
        if any("\\x" in value or "\\u" in value for value in strings):
            return True  # escape-encoded strings
        return False

    def sorted_rules(self) -> list[Rule]:
        """Catalog in (stage, rule id) order — the evaluation order."""
        return sorted(self.rules, key=lambda rule: (stage_order(rule.stage), rule.rule_id))


#: Module-level shared engine: feature extraction and the batch engine's
#: worker processes reuse one catalog without pickling rule instances.
_default_engine: RuleEngine | None = None


def default_engine() -> RuleEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = RuleEngine()
    return _default_engine
