"""Empirical threshold selection for level-2 predictions (§III-E2).

The paper picks the 10% confidence threshold by balancing three goals:

1. minimise the number of wrong labels,
2. maximise the number of detectable techniques,
3. maximise the accuracy.

:func:`select_threshold` reproduces that study: sweep candidate
thresholds, measure all three quantities on validation data, discard
thresholds that cannot detect enough techniques, and among the rest pick
the one with the best (wrong-labels, accuracy) trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import thresholded_top_k, wrong_and_missing


@dataclass
class ThresholdScore:
    """Validation metrics for one candidate threshold."""

    threshold: float
    avg_wrong: float
    avg_missing: float
    accuracy: float
    detectable_techniques: int


def evaluate_threshold(
    probabilities: np.ndarray,
    Y: np.ndarray,
    threshold: float,
    k: int = 7,
) -> ThresholdScore:
    """Score one threshold on validation data (the Figure-1b quantities)."""
    prediction = thresholded_top_k(probabilities, k=k, threshold=threshold)
    wrong, missing = wrong_and_missing(Y, prediction)
    # Accuracy in the paper's thresholded sense: every emitted label is in
    # the ground truth.
    no_wrong = ((prediction == 1) & (Y == 0)).sum(axis=1) == 0
    accuracy = float(no_wrong.mean())
    detectable = 0
    for label in range(Y.shape[1]):
        truth = Y[:, label] == 1
        if truth.any() and prediction[truth, label].any():
            detectable += 1
    return ThresholdScore(
        threshold=threshold,
        avg_wrong=wrong,
        avg_missing=missing,
        accuracy=accuracy,
        detectable_techniques=detectable,
    )


def select_threshold(
    probabilities: np.ndarray,
    Y: np.ndarray,
    candidates: list[float] | None = None,
    k: int = 7,
    min_detectable: int | None = None,
) -> tuple[float, list[ThresholdScore]]:
    """The §III-E2 procedure; returns (chosen threshold, all scores).

    ``min_detectable`` defaults to "most of them": at least 70% of the
    techniques present in the validation labels must stay detectable —
    the paper rejects 50% for exactly this reason ("we could only
    recognize 3 or 4 transformation techniques, while we would like to
    recognize most of them").
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.int64)
    candidates = candidates or [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50]
    present = int((Y.sum(axis=0) > 0).sum())
    if min_detectable is None:
        min_detectable = max(1, int(np.ceil(present * 0.7)))

    scores = [evaluate_threshold(probabilities, Y, t, k=k) for t in sorted(candidates)]
    eligible = [s for s in scores if s.detectable_techniques >= min_detectable]
    pool = eligible if eligible else scores
    # Goal 1 dominates (fewest wrong labels); goal 3 breaks ties; prefer
    # the lower threshold on a full tie (detect earlier).
    chosen = min(pool, key=lambda s: (round(s.avg_wrong, 6), -round(s.accuracy, 6), s.threshold))
    return chosen.threshold, scores
