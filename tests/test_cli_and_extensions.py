"""Tests for the CLI, feature importances, and the unmonitored technique."""

import random

import numpy as np
import pytest

from repro.js.parser import parse
from repro.js.visitor import find_all
from repro.ml.forest import RandomForestClassifier
from repro.transform.field_reference import (
    FieldReferenceObfuscator,
    obfuscate_field_references,
)


class TestFeatureImportances:
    def test_importances_sum_to_one(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 6))
        y = (X[:, 2] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=6, random_state=1).fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (6,)
        assert importances.sum() == pytest.approx(1.0, abs=1e-6)

    def test_informative_feature_ranked_first(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 5))
        y = (X[:, 3] > 0).astype(int)
        forest = RandomForestClassifier(
            n_estimators=10, random_state=2, max_features=None
        ).fit(X, y)
        assert int(np.argmax(forest.feature_importances_)) == 3

    def test_importances_nonnegative(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 4))
        y = (X.sum(axis=1) > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=4, random_state=3).fit(X, y)
        assert (forest.feature_importances_ >= 0).all()


class TestFieldReferenceObfuscation:
    def test_rewrites_dot_access(self, rng):
        program = parse("use(config.endpoint, window.location.href);")
        # config.endpoint, window.location, (window.location).href
        count = obfuscate_field_references(program, rng)
        assert count == 3
        members = find_all(program, "MemberExpression")
        assert all(m.computed for m in members)

    def test_output_reparses(self, sample_source, rng):
        out = FieldReferenceObfuscator().transform(sample_source, rng)
        parse(out)
        assert '["' in out

    def test_probability_zero_keeps_code(self, rng):
        program = parse("a.b.c;")
        assert obfuscate_field_references(program, rng, probability=0.0) == 0

    def test_not_in_registry(self):
        from repro.transform import registry

        names = {t.name for t in registry().values()}
        assert "obfuscated_field_reference" not in names

    def test_level1_flags_unmonitored_technique(self, trained_detector, regular_corpus, rng):
        """§V-A: level 1 recognizes transformations it was not trained on.

        Field-reference obfuscation alone is subtle; combined with the
        formatting footprint it rides on in the wild (compacted output) the
        detector should flag a majority.
        """
        transformed = []
        for source in regular_corpus[:6]:
            from repro.transform import get_transformer

            compact = get_transformer("minification_simple").transform(source, rng)
            transformed.append(FieldReferenceObfuscator().transform(compact, rng))
        flags = trained_detector.level1.is_transformed(transformed)
        assert flags.mean() >= 0.5


class TestCLI:
    def test_transform_command(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "input.js"
        script.write_text("function add(a, b) { return a + b; } add(1, 2);")
        code = main(
            ["transform", str(script), "--technique", "minification_simple"]
        )
        assert code == 0
        out = capsys.readouterr().out
        parse(out)
        assert "\n" not in out.strip()

    def test_transform_multiple_techniques(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "input.js"
        script.write_text("var message = 'hello'; console.log(message);")
        code = main(
            [
                "transform",
                str(script),
                "--technique",
                "minification_simple",
                "--technique",
                "identifier_obfuscation",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "_0x" in out

    def test_train_and_classify_roundtrip(self, tmp_path, capsys, monkeypatch, regular_corpus):
        from repro import __main__ as cli

        # Avoid a minutes-long real training run: patch the trainer to the
        # session fixture via a tiny stub save.
        class _Stub:
            def __init__(self, detector):
                self.detector = detector

        model_path = tmp_path / "model.pkl"

        def fake_train(args):
            from repro.detector.pipeline import TransformationDetector

            detector = TransformationDetector(n_estimators=4, random_state=0)
            detector.train(n_regular=8, seed=1)
            detector.save(model_path)
            return 0

        monkeypatch.setattr(cli, "_cmd_train", fake_train)
        assert cli.main(["train", "--out", str(model_path)]) == 0

        target = tmp_path / "check.js"
        target.write_text(regular_corpus[0])
        code = cli.main(["classify", "--model", str(model_path), str(target)])
        assert code == 0
        assert "check.js" in capsys.readouterr().out

    def test_classify_rejects_tiny_file(self, tmp_path, capsys, monkeypatch):
        from repro import __main__ as cli
        from repro.detector.pipeline import TransformationDetector

        monkeypatch.setattr(
            cli, "_load_or_train", lambda _path: TransformationDetector()
        )
        target = tmp_path / "tiny.js"
        target.write_text("x();")
        assert cli.main(["classify", "--model", "ignored", str(target)]) == 0
        assert "rejected" in capsys.readouterr().out

    def test_classify_missing_file_exit_code(self, monkeypatch, capsys):
        from repro import __main__ as cli
        from repro.detector.pipeline import TransformationDetector

        monkeypatch.setattr(
            cli, "_load_or_train", lambda _path: TransformationDetector()
        )
        assert cli.main(["classify", "--model", "ignored", "/nonexistent.js"]) == 1

    def test_classify_unparseable_admitted_file(
        self, tmp_path, capsys, monkeypatch, trained_detector, regular_corpus
    ):
        """A file that slips past admission but fails to parse must produce a
        one-line diagnostic and exit code 1 — not a traceback — while its
        batch neighbors still classify."""
        from repro import __main__ as cli

        monkeypatch.setattr(cli, "_load_or_train", lambda _path: trained_detector)
        monkeypatch.setattr(cli, "admit", lambda _source: True)
        good = tmp_path / "good.js"
        good.write_text(regular_corpus[0])
        bad = tmp_path / "bad.js"
        bad.write_text("function (((")
        code = cli.main(["classify", "--model", "ignored", str(good), str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "good.js" in captured.out
        # Errors share the uniform `name: verdict` stdout shape so piped
        # output keeps one line per file.
        bad_lines = [line for line in captured.out.splitlines() if "bad.js" in line]
        assert bad_lines and "error [parse]" in bad_lines[0]

    def test_classify_k_threshold_workers_flags(
        self, tmp_path, capsys, monkeypatch, trained_detector, regular_corpus
    ):
        from repro import __main__ as cli

        monkeypatch.setattr(cli, "_load_or_train", lambda _path: trained_detector)
        target = tmp_path / "check.js"
        target.write_text(regular_corpus[0])
        code = cli.main(
            [
                "classify",
                "--model",
                "ignored",
                "--k",
                "2",
                "--threshold",
                "0.25",
                "--workers",
                "1",
                str(target),
            ]
        )
        assert code == 0
        assert "check.js" in capsys.readouterr().out
