"""Differential parsing: the flat-AST parser vs the frozen pre-rewrite one.

The table-driven parser with positional node factories and the fused
flat-index enhance pipeline are gated on identity with the frozen
reference implementation (``tests/reference_parser.py``): on every
source the corpus generator and the transformation pipeline emit, the
rewrite must be a pure optimisation.  Identity is checked at four
layers — serialized ASTs, control/data-flow edge signatures, the full
static-feature dict, and hashed AST n-gram vectors — plus finiteness of
the complete level-1/level-2 vectors, so a drift anywhere in the fused
pipeline fails here before it can skew a trained model.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.corpus.generator import generate_corpus
from repro.features.extractor import FeatureExtractor
from repro.features.ngrams import ast_ngram_vector, hashed_ngram_vector
from repro.features.static_features import compute_static_features
from repro.flows.graph import enhance
from repro.js.ast_nodes import to_dict
from repro.js.parser import parse
from repro.transform import get_transformer
from tests import reference_parser

# ES2015+ corners that exercise the rewritten dispatch paths: optional
# chaining, template nesting, classes, generators/async, destructuring.
ES2015_CORNERS = [
    "const f = (a = 1, {b, c: [d] = []} = {}) => a + b + d;",
    "class Point { static origin = null; get x() { return this._x; } "
    "set x(v) { this._x = v; } ['computed' + key]() { return 1; } "
    "constructor(x, y) { this.y = y; } static from({x, y}) { return new Point(x, y); } }",
    "async function load(url) { const r = await fetch(url); return r?.body ?? null; }",
    "function* walk(tree) { for (const child of tree.children) { yield* walk(child); } yield tree; }",
    "const msg = `outer ${`inner ${1 + 2} ${'lit'}`} tail`;",
    "let [a = 10, , ...rest] = xs; ({p: q = a, ...others} = obj);",
    "const m = obj?.deep?.[key]?.(arg1, ...spread)?.tail;",
    "label: for (const k in o) { if (k === 'stop') break label; else continue label; }",
    "var x = cond ? a ? b : c : d ? e : f;",
    "new.target; const t = tag`a${b}c`; export default class extends Base {};",
    "try { throw {code: 1}; } catch ({code}) { } finally { done(); }",
    "switch (v) { case 1: case 2: f(); break; default: g(); }",
]

TRANSFORMS = [
    "identifier_obfuscation",
    "string_obfuscation",
    "global_array",
    "no_alphanumeric",
    "dead_code_injection",
    "control_flow_flattening",
    "self_defending",
    "debug_protection",
    "minification_simple",
    "minification_advanced",
]


def _corpus_mix() -> list[str]:
    base = generate_corpus(6, seed=1306)
    sources = list(base)
    rng = random.Random(77)
    for name in TRANSFORMS:
        transformer = get_transformer(name)
        sources.append(transformer.transform(base[len(sources) % len(base)], rng))
    return sources


@pytest.fixture(scope="module")
def corpus_mix() -> list[str]:
    return _corpus_mix()


def _cf_signature(edges):
    return sorted((e.source.start, e.target.start, e.label) for e in edges)


def _df_signature(edges):
    if edges is None:
        return None
    return sorted((e.source.start, e.target.start, e.name) for e in edges)


class TestAstIdentity:
    @pytest.mark.parametrize("source", ES2015_CORNERS)
    def test_es2015_corner_matches_reference(self, source):
        assert to_dict(parse(source)) == reference_parser.to_dict(
            reference_parser.parse(source)
        )

    def test_corpus_mix_matches_reference(self, corpus_mix):
        for source in corpus_mix:
            assert to_dict(parse(source)) == reference_parser.to_dict(
                reference_parser.parse(source)
            )

    def test_parse_errors_agree(self):
        for source in ["var x = ;", "function ( {", "a b c ===", "({,})"]:
            with pytest.raises(SyntaxError):
                parse(source)
            with pytest.raises(SyntaxError):
                reference_parser.parse(source)


class TestEnhancedIdentity:
    def test_flow_edges_match_reference(self, corpus_mix):
        for source in corpus_mix:
            live = enhance(source)
            ref = reference_parser.enhance(source)
            assert _cf_signature(live.control_flow) == _cf_signature(ref.control_flow)
            assert _df_signature(live.data_flow) == _df_signature(ref.data_flow)

    def test_static_features_bit_identical(self, corpus_mix):
        for source in corpus_mix:
            live = compute_static_features(enhance(source))
            ref = reference_parser.compute_static_features(
                reference_parser.enhance(source)
            )
            assert set(live) == set(ref)
            diff = {k: (live[k], ref[k]) for k in live if live[k] != ref[k]}
            assert not diff

    def test_ngram_vectors_bit_identical(self, corpus_mix):
        for source in corpus_mix:
            live = enhance(source)
            ref_vec = reference_parser.ast_ngram_vector(
                reference_parser.parse(source), n_dims=256
            )
            flat_vec = hashed_ngram_vector(live.flat.type_names, n_dims=256)
            walk_vec = ast_ngram_vector(live.program, n_dims=256)
            assert np.array_equal(flat_vec, ref_vec)
            assert np.array_equal(walk_vec, ref_vec)

    def test_full_vectors_finite(self, corpus_mix):
        for level in (1, 2):
            extractor = FeatureExtractor(level=level)
            for source in corpus_mix[::4]:
                vector = extractor.extract_from_enhanced(enhance(source))
                assert np.all(np.isfinite(vector))


class TestFlatIndexInvariants:
    def test_preorder_parent_depth_consistency(self, corpus_mix):
        for source in corpus_mix:
            flat = enhance(source).flat
            assert flat is not None
            assert flat.parents[0] == -1 and flat.depths[0] == 0
            for i in range(1, len(flat)):
                parent = flat.parents[i]
                assert 0 <= parent < i  # parents precede children in pre-order
                assert flat.depths[i] == flat.depths[parent] + 1

    def test_type_names_match_nodes(self, corpus_mix):
        source = corpus_mix[0]
        flat = enhance(source).flat
        assert [n.type for n in flat.nodes] == list(flat.type_names)
        assert len(flat.type_ids) == len(flat)
