"""Packed flat-array forest inference.

A fitted forest's trees are flattened into one set of contiguous
``feature_/threshold_/left_/right_/value_`` arrays with per-tree root
offsets.  Prediction then advances *all rows through all trees at once*:
each step is a handful of vectorised gathers on the packed arrays, and
the loop runs ``max_depth`` times total instead of once per tree.

Leaves are rewritten to point at themselves (``left == right == self``)
so the traversal needs no per-step active mask — rows that reached a
leaf simply stay put while deeper rows keep descending.
"""

from __future__ import annotations

import numpy as np


class PackedForest:
    """Flattened ensemble supporting single-sweep ``predict_proba``."""

    __slots__ = (
        "feature_",
        "threshold_",
        "left_",
        "right_",
        "value_",
        "leaf_",
        "roots_",
        "max_depth_",
        "n_trees_",
    )

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        leaf: np.ndarray,
        roots: np.ndarray,
        max_depth: int,
    ) -> None:
        self.feature_ = feature
        self.threshold_ = threshold
        self.left_ = left
        self.right_ = right
        self.value_ = value
        self.leaf_ = leaf
        self.roots_ = roots
        self.max_depth_ = max_depth
        self.n_trees_ = len(roots)

    @classmethod
    def from_trees(cls, trees: list) -> "PackedForest":
        """Pack fitted :class:`DecisionTreeClassifier` instances."""
        if not trees:
            raise ValueError("Cannot pack an empty forest")
        features: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        lefts: list[np.ndarray] = []
        rights: list[np.ndarray] = []
        values: list[np.ndarray] = []
        leaves: list[np.ndarray] = []
        roots = np.empty(len(trees), dtype=np.int32)
        offset = 0
        max_depth = 0
        for i, tree in enumerate(trees):
            f = np.asarray(tree.feature_, dtype=np.int32)
            t = np.asarray(tree.threshold_, dtype=np.int16)
            l = np.asarray(tree.left_, dtype=np.int32)
            r = np.asarray(tree.right_, dtype=np.int32)
            v = np.asarray(tree.value_, dtype=np.float64)
            local = np.arange(len(f), dtype=np.int32)
            leaf = f < 0
            # Leaves self-loop; their feature becomes a harmless column 0.
            features.append(np.where(leaf, 0, f))
            thresholds.append(np.where(leaf, np.int16(0), t))
            lefts.append(np.where(leaf, local, l) + offset)
            rights.append(np.where(leaf, local, r) + offset)
            values.append(v)
            leaves.append(leaf)
            roots[i] = offset
            offset += len(f)
            max_depth = max(max_depth, _tree_depth(f, l, r))
        return cls(
            np.concatenate(features),
            np.concatenate(thresholds),
            np.concatenate(lefts).astype(np.int32),
            np.concatenate(rights).astype(np.int32),
            np.concatenate(values),
            np.concatenate(leaves),
            roots,
            max_depth,
        )

    #: Rows per walker block — keeps the (rows × trees) state arrays
    #: cache-resident instead of streaming multi-MB temporaries per step.
    BLOCK_ROWS = 8192

    def predict_proba(self, X_binned: np.ndarray) -> np.ndarray:
        """Mean P(class 1) over all trees, one vectorised sweep.

        All (row, tree) walker states advance together; walkers that hit
        a leaf fold their value into a per-row accumulator and drop out,
        so each depth step only touches walkers still descending.
        """
        X_binned = np.asarray(X_binned, dtype=np.uint8)
        n = len(X_binned)
        if n == 0:
            return np.zeros(0)
        out = np.empty(n)
        for start in range(0, n, self.BLOCK_ROWS):
            stop = min(start + self.BLOCK_ROWS, n)
            out[start:stop] = self._predict_block(X_binned[start:stop])
        return out

    def _predict_block(self, X_binned: np.ndarray) -> np.ndarray:
        n = len(X_binned)
        T = self.n_trees_
        current = np.repeat(self.roots_[None, :], n, axis=0).reshape(-1)
        rows = np.repeat(np.arange(n, dtype=np.uint32), T)
        acc = np.zeros(n)
        while current.size:
            # One step for every walker.  Leaves self-loop (left ==
            # right == self), so stepping a leaf is a no-op and a
            # single-leaf root tree terminates via the drop below.
            go_left = (
                X_binned[rows, self.feature_[current]]
                <= self.threshold_[current]
            )
            current = np.where(
                go_left, self.left_[current], self.right_[current]
            )
            at_leaf = self.leaf_[current]
            if at_leaf.any():
                acc += np.bincount(
                    rows[at_leaf],
                    weights=self.value_[current[at_leaf]],
                    minlength=n,
                )
                descending = ~at_leaf
                current = current[descending]
                rows = rows[descending]
        return acc / T

    @property
    def node_count(self) -> int:
        return len(self.feature_)


def _tree_depth(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> int:
    """Depth of a flat tree (0 for a lone leaf)."""
    depth = 0
    stack: list[tuple[int, int]] = [(0, 0)]
    while stack:
        node, d = stack.pop()
        if feature[node] < 0:
            depth = max(depth, d)
        else:
            stack.append((int(left[node]), d + 1))
            stack.append((int(right[node]), d + 1))
    return depth
