"""The enhanced AST: parse tree + tokens + control flow + data flow.

:func:`enhance` is the single entry point the detector pipeline uses to
abstract a JavaScript file (paper §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flows.cfg import ControlFlowEdge, build_control_flow
from repro.flows.dfg import DataFlowEdge, build_data_flow
from repro.js.ast_nodes import Node
from repro.js.flat import FlatIndex, build_flat_index
from repro.js.parser import Parser
from repro.js.scope import Scope, analyze_scopes
from repro.js.tokens import Token


@dataclass
class EnhancedAST:
    """A JavaScript file abstracted per the paper: AST + CF + DF + tokens."""

    source: str
    program: Node
    tokens: list[Token]
    comments: list[Token]
    scope: Scope
    control_flow: list[ControlFlowEdge] = field(default_factory=list)
    data_flow: list[DataFlowEdge] | None = None
    #: Pre-order flat arrays over ``program`` (node pool, type ids/names,
    #: parents, depths).  ``None`` for hand-assembled instances; feature
    #: extraction falls back to tree traversal in that case.
    flat: FlatIndex | None = None
    #: True when a flow analysis (DFG timeout or interproc budget breach)
    #: silently degraded for this file.  Threaded through
    #: ``DetectionResult``, scan store records, and serve ``/metrics``.
    flow_timeout: bool = False
    _interproc: "object | None" = field(default=None, init=False, repr=False)

    @property
    def data_flow_available(self) -> bool:
        """False when the data-flow pass hit its timeout (CF-only fallback)."""
        return self.data_flow is not None

    def interproc(self, budget=None):
        """Lazily computed interprocedural summaries (cached per instance).

        The first call pays for the whole-program analysis; budget caps
        degrade to empty summaries and flip :attr:`flow_timeout` instead
        of raising.  Passing an explicit ``budget`` bypasses the cache.
        """
        from repro.flows.interproc import analyze_program

        if budget is not None:
            result = analyze_program(self.program, budget=budget)
            if result.degraded:
                self.flow_timeout = True
            return result
        if self._interproc is None:
            self._interproc = analyze_program(self.program)
            if self._interproc.degraded:
                self.flow_timeout = True
        return self._interproc

    @property
    def node_count(self) -> int:
        if self.flat is not None:
            return len(self.flat)
        from repro.js.visitor import count_nodes

        return count_nodes(self.program)


def enhance(source: str, data_flow_timeout: float = 120.0) -> EnhancedAST:
    """Parse and enhance a script with control and data flows.

    Raises :class:`repro.js.parser.ParseError` (or ``LexerError``) on
    syntactically invalid input — callers that scan corpora catch these and
    count the file as unparseable, as a real Esprima pipeline would.
    """
    parser = Parser(source)
    program = parser.parse_program()
    flat = build_flat_index(program)
    scope = analyze_scopes(program)
    control_flow = build_control_flow(program)
    data_flow = build_data_flow(program, scope=scope, timeout=data_flow_timeout)
    return EnhancedAST(
        source=source,
        program=program,
        tokens=parser.tokens,
        comments=parser.comments,
        scope=scope,
        control_flow=control_flow,
        data_flow=data_flow,
        flat=flat,
        flow_timeout=data_flow is None,
    )
