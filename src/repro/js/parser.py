"""Recursive-descent JavaScript parser producing ESTree-compatible ASTs.

Covers ES5 plus the ES2015 feature set prevalent in real-world scripts:
``let``/``const``, arrow functions, classes, template literals, spread and
rest elements, destructuring, ``for-of``, computed properties, shorthand
object members, default parameters, generators, and ``async``/``await``.

Automatic semicolon insertion follows the standard rules: a statement may be
terminated by an explicit ``;``, a closing ``}``, end-of-input, or a line
break before the offending token.  Restricted productions (``return``,
``throw``, ``break``, ``continue`` and postfix ``++``/``--``) respect line
breaks.
"""

from __future__ import annotations

from repro.js.ast_nodes import Node
from repro.js.lexer import Lexer, split_template
from repro.js.tokens import Token, TokenType


class ParseError(SyntaxError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token | None = None) -> None:
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column}"
        super().__init__(message)
        self.token = token


# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "??": 1,
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7,
    "!=": 7,
    "===": 7,
    "!==": 7,
    "<": 8,
    ">": 8,
    "<=": 8,
    ">=": 8,
    "instanceof": 8,
    "in": 8,
    "<<": 9,
    ">>": 9,
    ">>>": 9,
    "+": 10,
    "-": 10,
    "*": 11,
    "/": 11,
    "%": 11,
    "**": 12,
}

_ASSIGNMENT_OPERATORS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", ">>>=", "&=", "|=", "^=", "**=", "&&=", "||=", "??="}
)

_UNARY_OPERATORS = frozenset({"+", "-", "~", "!", "typeof", "void", "delete"})


class Parser:
    """Parser over a pre-tokenized stream (enables cheap lookahead)."""

    def __init__(self, source: str) -> None:
        self.source = source
        lexer = Lexer(source)
        self.tokens = lexer.scan_all()
        self.comments = lexer.comments
        self.index = 0
        self.in_function = 0
        self.in_loop = 0
        self.in_switch = 0
        self._paren_match = self._match_brackets()

    def _match_brackets(self) -> dict[int, int]:
        """Token index of the closer for every opening bracket token."""
        matches: dict[int, int] = {}
        stack: list[int] = []
        for idx, token in enumerate(self.tokens):
            if token.type is not TokenType.PUNCTUATOR:
                continue
            if token.value in ("(", "[", "{"):
                stack.append(idx)
            elif token.value in (")", "]", "}") and stack:
                matches[stack.pop()] = idx
        return matches

    # -- token helpers -------------------------------------------------------

    @property
    def token(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _at(self, type_: TokenType, value: str | None = None) -> bool:
        token = self.token
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def _at_punct(self, value: str) -> bool:
        return self._at(TokenType.PUNCTUATOR, value)

    def _at_keyword(self, value: str) -> bool:
        return self._at(TokenType.KEYWORD, value)

    def _eat_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def _eat_keyword(self, value: str) -> bool:
        if self._at_keyword(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        if not self._at_punct(value):
            raise ParseError(f"Expected {value!r}, got {self.token.value!r}", self.token)
        return self._advance()

    def _expect_keyword(self, value: str) -> Token:
        if not self._at_keyword(value):
            raise ParseError(f"Expected keyword {value!r}, got {self.token.value!r}", self.token)
        return self._advance()

    def _newline_before(self) -> bool:
        if self.index == 0:
            return False
        return self.token.line > self.tokens[self.index - 1].line

    def _consume_semicolon(self) -> None:
        """Apply automatic semicolon insertion."""
        if self._eat_punct(";"):
            return
        if self._at_punct("}") or self.token.type is TokenType.EOF:
            return
        if self._newline_before():
            return
        raise ParseError(f"Expected ';', got {self.token.value!r}", self.token)

    # -- entry point ---------------------------------------------------------

    def parse_program(self) -> Node:
        body: list[Node] = []
        while self.token.type is not TokenType.EOF:
            body.append(self._parse_statement_list_item())
        return Node(
            "Program",
            body=body,
            sourceType="script",
            start=0,
            end=len(self.source),
        )

    # -- statements ----------------------------------------------------------

    def _parse_statement_list_item(self) -> Node:
        if self._at_keyword("import"):
            # Dynamic import() and import.meta are expressions.
            nxt = self._peek()
            if not (nxt.type is TokenType.PUNCTUATOR and nxt.value in ("(", ".")):
                return self._parse_import_declaration()
        if self._at_keyword("export"):
            return self._parse_export_declaration()
        return self._parse_statement()

    def _parse_statement(self) -> Node:
        token = self.token
        if token.type is TokenType.PUNCTUATOR:
            if token.value == "{":
                return self._parse_block()
            if token.value == ";":
                start = self._advance()
                return Node("EmptyStatement", start=start.start, end=start.end)
        if token.type is TokenType.KEYWORD:
            handler = {
                "var": self._parse_variable_statement,
                "let": self._parse_variable_statement,
                "const": self._parse_variable_statement,
                "function": self._parse_function_declaration,
                "class": self._parse_class_declaration,
                "if": self._parse_if,
                "for": self._parse_for,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "switch": self._parse_switch,
                "return": self._parse_return,
                "break": self._parse_break_continue,
                "continue": self._parse_break_continue,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "debugger": self._parse_debugger,
                "with": self._parse_with,
            }.get(token.value)
            if handler is not None:
                if token.value in ("let", "const"):
                    # `let` as identifier in sloppy mode: let[x] / let.y etc.
                    nxt = self._peek()
                    if token.value == "let" and not (
                        nxt.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
                        or (nxt.type is TokenType.PUNCTUATOR and nxt.value in ("[", "{"))
                    ):
                        return self._parse_expression_statement()
                return handler()
        if (
            token.type is TokenType.IDENTIFIER
            and token.value == "async"
            and self._peek().type is TokenType.KEYWORD
            and self._peek().value == "function"
            and self._peek().line == token.line
        ):
            return self._parse_function_declaration()
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek().type is TokenType.PUNCTUATOR
            and self._peek().value == ":"
        ):
            return self._parse_labeled_statement()
        return self._parse_expression_statement()

    def _parse_block(self) -> Node:
        start = self._expect_punct("{")
        body: list[Node] = []
        while not self._at_punct("}"):
            if self.token.type is TokenType.EOF:
                raise ParseError("Unexpected end of input in block", self.token)
            body.append(self._parse_statement_list_item())
        end = self._expect_punct("}")
        return Node("BlockStatement", body=body, start=start.start, end=end.end)

    def _parse_variable_statement(self) -> Node:
        declaration = self._parse_variable_declaration()
        self._consume_semicolon()
        return declaration

    def _parse_variable_declaration(self, in_for: bool = False) -> Node:
        kind_token = self._advance()
        declarations = [self._parse_variable_declarator(in_for)]
        while self._eat_punct(","):
            declarations.append(self._parse_variable_declarator(in_for))
        return Node(
            "VariableDeclaration",
            declarations=declarations,
            kind=kind_token.value,
            start=kind_token.start,
            end=declarations[-1].end,
        )

    def _parse_variable_declarator(self, in_for: bool = False) -> Node:
        ident = self._parse_binding_target()
        init = None
        if self._eat_punct("="):
            init = self._parse_assignment_expression(no_in=in_for)
        end = init.end if init is not None else ident.end
        return Node("VariableDeclarator", id=ident, init=init, start=ident.start, end=end)

    def _parse_binding_target(self) -> Node:
        if self._at_punct("["):
            return self._reinterpret_as_pattern(self._parse_array_literal())
        if self._at_punct("{"):
            return self._reinterpret_as_pattern(self._parse_object_literal())
        return self._parse_identifier_name()

    def _parse_identifier_name(self) -> Node:
        token = self.token
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD
            and token.value in ("let", "yield", "await", "of")
        ):
            self._advance()
            return Node("Identifier", name=token.value, start=token.start, end=token.end)
        raise ParseError(f"Expected identifier, got {token.value!r}", token)

    def _parse_function_declaration(self, allow_anonymous: bool = False) -> Node:
        return self._parse_function(declaration=True, allow_anonymous=allow_anonymous)

    def _parse_function(self, declaration: bool, allow_anonymous: bool = False) -> Node:
        start = self.token
        is_async = False
        if self.token.type is TokenType.IDENTIFIER and self.token.value == "async":
            is_async = True
            self._advance()
        self._expect_keyword("function")
        generator = self._eat_punct("*")
        ident = None
        if not self._at_punct("("):
            ident = self._parse_identifier_name()
        elif declaration and not allow_anonymous:
            raise ParseError("Function declarations require a name", self.token)
        params = self._parse_function_params()
        self.in_function += 1
        body = self._parse_block()
        self.in_function -= 1
        return Node(
            "FunctionDeclaration" if declaration else "FunctionExpression",
            id=ident,
            params=params,
            body=body,
            generator=generator,
            # `async` is a reserved attribute name in Python only via keyword
            # use; fine as a plain attribute.
            start=start.start,
            end=body.end,
            **{"async": is_async},
        )

    def _parse_function_params(self) -> list[Node]:
        self._expect_punct("(")
        params: list[Node] = []
        while not self._at_punct(")"):
            if self._at_punct("..."):
                rest_start = self._advance()
                argument = self._parse_binding_target()
                params.append(
                    Node("RestElement", argument=argument, start=rest_start.start, end=argument.end)
                )
            else:
                target = self._parse_binding_target()
                if self._eat_punct("="):
                    default = self._parse_assignment_expression()
                    target = Node(
                        "AssignmentPattern",
                        left=target,
                        right=default,
                        start=target.start,
                        end=default.end,
                    )
                params.append(target)
            if not self._at_punct(")"):
                self._expect_punct(",")
        self._expect_punct(")")
        return params

    def _parse_class_declaration(self, allow_anonymous: bool = False) -> Node:
        return self._parse_class(declaration=True, allow_anonymous=allow_anonymous)

    def _parse_class(self, declaration: bool, allow_anonymous: bool = False) -> Node:
        start = self._expect_keyword("class")
        ident = None
        if self.token.type is TokenType.IDENTIFIER:
            ident = self._parse_identifier_name()
        elif declaration and not allow_anonymous:
            raise ParseError("Class declarations require a name", self.token)
        super_class = None
        if self._eat_keyword("extends"):
            super_class = self._parse_left_hand_side_expression()
        body = self._parse_class_body()
        return Node(
            "ClassDeclaration" if declaration else "ClassExpression",
            id=ident,
            superClass=super_class,
            body=body,
            start=start.start,
            end=body.end,
        )

    def _parse_class_body(self) -> Node:
        start = self._expect_punct("{")
        members: list[Node] = []
        while not self._at_punct("}"):
            if self._eat_punct(";"):
                continue
            members.append(self._parse_class_member())
        end = self._expect_punct("}")
        return Node("ClassBody", body=members, start=start.start, end=end.end)

    def _parse_class_member(self) -> Node:
        start = self.token
        is_static = False
        if (
            self.token.type is TokenType.IDENTIFIER
            and self.token.value == "static"
            and not (self._peek().type is TokenType.PUNCTUATOR and self._peek().value in ("(", "="))
        ):
            is_static = True
            self._advance()
        kind = "method"
        is_async = False
        generator = False
        if (
            self.token.type is TokenType.IDENTIFIER
            and self.token.value in ("get", "set")
            and not (self._peek().type is TokenType.PUNCTUATOR and self._peek().value in ("(", "=", ";", "}"))
        ):
            kind = self.token.value
            self._advance()
        elif (
            self.token.type is TokenType.IDENTIFIER
            and self.token.value == "async"
            and not (self._peek().type is TokenType.PUNCTUATOR and self._peek().value in ("(", "=", ";", "}"))
        ):
            is_async = True
            self._advance()
        if self._eat_punct("*"):
            generator = True
        key, computed = self._parse_property_key()
        if self._at_punct("(") :
            params = self._parse_function_params()
            self.in_function += 1
            body = self._parse_block()
            self.in_function -= 1
            value = Node(
                "FunctionExpression",
                id=None,
                params=params,
                body=body,
                generator=generator,
                start=key.start,
                end=body.end,
                **{"async": is_async},
            )
            if kind == "method" and not computed and key.type == "Identifier" and key.name == "constructor":
                kind = "constructor"
            return Node(
                "MethodDefinition",
                key=key,
                value=value,
                kind=kind,
                static=is_static,
                computed=computed,
                start=start.start,
                end=body.end,
            )
        # Class field (ES2022); common enough in the wild to support.
        value = None
        if self._eat_punct("="):
            value = self._parse_assignment_expression()
        self._consume_semicolon()
        return Node(
            "PropertyDefinition",
            key=key,
            value=value,
            static=is_static,
            computed=computed,
            start=start.start,
            end=value.end if value is not None else key.end,
        )

    def _parse_property_key(self) -> tuple[Node, bool]:
        token = self.token
        if self._eat_punct("["):
            key = self._parse_assignment_expression()
            self._expect_punct("]")
            return key, True
        if token.type in (TokenType.STRING, TokenType.NUMERIC):
            self._advance()
            return self._literal_from_token(token), False
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.BOOLEAN, TokenType.NULL):
            self._advance()
            return Node("Identifier", name=token.value, start=token.start, end=token.end), False
        raise ParseError(f"Invalid property key {token.value!r}", token)

    def _parse_if(self) -> Node:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        consequent = self._parse_statement()
        alternate = None
        if self._eat_keyword("else"):
            alternate = self._parse_statement()
        end = alternate.end if alternate is not None else consequent.end
        return Node(
            "IfStatement",
            test=test,
            consequent=consequent,
            alternate=alternate,
            start=start.start,
            end=end,
        )

    def _parse_for(self) -> Node:
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init: Node | None = None
        if self._at_punct(";"):
            self._advance()
        else:
            if self._at_keyword("var") or self._at_keyword("let") or self._at_keyword("const"):
                init = self._parse_variable_declaration(in_for=True)
            else:
                init = self._parse_expression(no_in=True)
            if self._at_keyword("in") or (
                self.token.type is TokenType.IDENTIFIER and self.token.value == "of"
            ):
                return self._parse_for_in_of(start, init)
            self._expect_punct(";")
        test = None if self._at_punct(";") else self._parse_expression()
        self._expect_punct(";")
        update = None if self._at_punct(")") else self._parse_expression()
        self._expect_punct(")")
        self.in_loop += 1
        body = self._parse_statement()
        self.in_loop -= 1
        return Node(
            "ForStatement",
            init=init,
            test=test,
            update=update,
            body=body,
            start=start.start,
            end=body.end,
        )

    def _parse_for_in_of(self, start: Token, left: Node) -> Node:
        is_of = self.token.value == "of"
        self._advance()
        if left.type not in ("VariableDeclaration",):
            left = self._reinterpret_as_pattern(left)
        right = self._parse_assignment_expression() if is_of else self._parse_expression()
        self._expect_punct(")")
        self.in_loop += 1
        body = self._parse_statement()
        self.in_loop -= 1
        return Node(
            "ForOfStatement" if is_of else "ForInStatement",
            left=left,
            right=right,
            body=body,
            start=start.start,
            end=body.end,
        )

    def _parse_while(self) -> Node:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        self.in_loop += 1
        body = self._parse_statement()
        self.in_loop -= 1
        return Node("WhileStatement", test=test, body=body, start=start.start, end=body.end)

    def _parse_do_while(self) -> Node:
        start = self._expect_keyword("do")
        self.in_loop += 1
        body = self._parse_statement()
        self.in_loop -= 1
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self._parse_expression()
        end = self._expect_punct(")")
        self._eat_punct(";")
        return Node("DoWhileStatement", body=body, test=test, start=start.start, end=end.end)

    def _parse_switch(self) -> Node:
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[Node] = []
        self.in_switch += 1
        while not self._at_punct("}"):
            cases.append(self._parse_switch_case())
        self.in_switch -= 1
        end = self._expect_punct("}")
        return Node(
            "SwitchStatement",
            discriminant=discriminant,
            cases=cases,
            start=start.start,
            end=end.end,
        )

    def _parse_switch_case(self) -> Node:
        start = self.token
        test = None
        if self._eat_keyword("case"):
            test = self._parse_expression()
        else:
            self._expect_keyword("default")
        self._expect_punct(":")
        consequent: list[Node] = []
        while not (
            self._at_punct("}") or self._at_keyword("case") or self._at_keyword("default")
        ):
            consequent.append(self._parse_statement_list_item())
        end = consequent[-1].end if consequent else start.end
        return Node("SwitchCase", test=test, consequent=consequent, start=start.start, end=end)

    def _parse_return(self) -> Node:
        start = self._expect_keyword("return")
        argument = None
        if (
            not self._at_punct(";")
            and not self._at_punct("}")
            and self.token.type is not TokenType.EOF
            and not self._newline_before()
        ):
            argument = self._parse_expression()
        self._consume_semicolon()
        end = argument.end if argument is not None else start.end
        return Node("ReturnStatement", argument=argument, start=start.start, end=end)

    def _parse_break_continue(self) -> Node:
        start = self._advance()
        label = None
        if self.token.type is TokenType.IDENTIFIER and not self._newline_before():
            label = self._parse_identifier_name()
        self._consume_semicolon()
        kind = "BreakStatement" if start.value == "break" else "ContinueStatement"
        end = label.end if label is not None else start.end
        return Node(kind, label=label, start=start.start, end=end)

    def _parse_throw(self) -> Node:
        start = self._expect_keyword("throw")
        if self._newline_before():
            raise ParseError("Illegal newline after throw", self.token)
        argument = self._parse_expression()
        self._consume_semicolon()
        return Node("ThrowStatement", argument=argument, start=start.start, end=argument.end)

    def _parse_try(self) -> Node:
        start = self._expect_keyword("try")
        block = self._parse_block()
        handler = None
        finalizer = None
        if self._at_keyword("catch"):
            catch_start = self._advance()
            param = None
            if self._eat_punct("("):
                param = self._parse_binding_target()
                self._expect_punct(")")
            body = self._parse_block()
            handler = Node(
                "CatchClause", param=param, body=body, start=catch_start.start, end=body.end
            )
        if self._eat_keyword("finally"):
            finalizer = self._parse_block()
        if handler is None and finalizer is None:
            raise ParseError("Missing catch or finally after try", self.token)
        end = (finalizer or handler).end
        return Node(
            "TryStatement",
            block=block,
            handler=handler,
            finalizer=finalizer,
            start=start.start,
            end=end,
        )

    def _parse_debugger(self) -> Node:
        start = self._expect_keyword("debugger")
        self._consume_semicolon()
        return Node("DebuggerStatement", start=start.start, end=start.end)

    def _parse_with(self) -> Node:
        start = self._expect_keyword("with")
        self._expect_punct("(")
        obj = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return Node("WithStatement", object=obj, body=body, start=start.start, end=body.end)

    def _parse_labeled_statement(self) -> Node:
        label = self._parse_identifier_name()
        self._expect_punct(":")
        body = self._parse_statement()
        return Node("LabeledStatement", label=label, body=body, start=label.start, end=body.end)

    def _parse_expression_statement(self) -> Node:
        expression = self._parse_expression()
        self._consume_semicolon()
        return Node(
            "ExpressionStatement",
            expression=expression,
            start=expression.start,
            end=expression.end,
        )

    # -- modules -------------------------------------------------------------

    def _parse_import_declaration(self) -> Node:
        start = self._expect_keyword("import")
        specifiers: list[Node] = []
        if self.token.type is TokenType.STRING:
            source_token = self._advance()
            self._consume_semicolon()
            return Node(
                "ImportDeclaration",
                specifiers=specifiers,
                source=self._literal_from_token(source_token),
                start=start.start,
                end=source_token.end,
            )
        if self.token.type is TokenType.IDENTIFIER:
            local = self._parse_identifier_name()
            specifiers.append(
                Node("ImportDefaultSpecifier", local=local, start=local.start, end=local.end)
            )
            if self._eat_punct(","):
                self._parse_import_rest(specifiers)
        else:
            self._parse_import_rest(specifiers)
        if not (self.token.type is TokenType.IDENTIFIER and self.token.value == "from"):
            raise ParseError("Expected 'from' in import declaration", self.token)
        self._advance()
        if self.token.type is not TokenType.STRING:
            raise ParseError("Expected module source string", self.token)
        source_token = self._advance()
        self._consume_semicolon()
        return Node(
            "ImportDeclaration",
            specifiers=specifiers,
            source=self._literal_from_token(source_token),
            start=start.start,
            end=source_token.end,
        )

    def _parse_import_rest(self, specifiers: list[Node]) -> None:
        if self._eat_punct("*"):
            if not (self.token.type is TokenType.IDENTIFIER and self.token.value == "as"):
                raise ParseError("Expected 'as' in namespace import", self.token)
            self._advance()
            local = self._parse_identifier_name()
            specifiers.append(
                Node("ImportNamespaceSpecifier", local=local, start=local.start, end=local.end)
            )
            return
        self._expect_punct("{")
        while not self._at_punct("}"):
            imported = self._parse_identifier_name()
            local = imported
            if self.token.type is TokenType.IDENTIFIER and self.token.value == "as":
                self._advance()
                local = self._parse_identifier_name()
            specifiers.append(
                Node(
                    "ImportSpecifier",
                    imported=imported,
                    local=local,
                    start=imported.start,
                    end=local.end,
                )
            )
            if not self._at_punct("}"):
                self._expect_punct(",")
        self._expect_punct("}")

    def _parse_export_declaration(self) -> Node:
        start = self._expect_keyword("export")
        if self._eat_keyword("default"):
            if self._at_keyword("function") or (
                self.token.type is TokenType.IDENTIFIER
                and self.token.value == "async"
                and self._peek().value == "function"
            ):
                declaration = self._parse_function_declaration(allow_anonymous=True)
            elif self._at_keyword("class"):
                declaration = self._parse_class_declaration(allow_anonymous=True)
            else:
                declaration = self._parse_assignment_expression()
                self._consume_semicolon()
            return Node(
                "ExportDefaultDeclaration",
                declaration=declaration,
                start=start.start,
                end=declaration.end,
            )
        if self._at_punct("*"):
            self._advance()
            if self.token.type is TokenType.IDENTIFIER and self.token.value == "from":
                self._advance()
            source_token = self._advance()
            self._consume_semicolon()
            return Node(
                "ExportAllDeclaration",
                source=self._literal_from_token(source_token),
                start=start.start,
                end=source_token.end,
            )
        if self._at_punct("{"):
            self._expect_punct("{")
            specifiers = []
            while not self._at_punct("}"):
                local = self._parse_identifier_name()
                exported = local
                if self.token.type is TokenType.IDENTIFIER and self.token.value == "as":
                    self._advance()
                    exported = self._parse_identifier_name()
                specifiers.append(
                    Node(
                        "ExportSpecifier",
                        local=local,
                        exported=exported,
                        start=local.start,
                        end=exported.end,
                    )
                )
                if not self._at_punct("}"):
                    self._expect_punct(",")
            end = self._expect_punct("}")
            source = None
            if self.token.type is TokenType.IDENTIFIER and self.token.value == "from":
                self._advance()
                source = self._literal_from_token(self._advance())
            self._consume_semicolon()
            return Node(
                "ExportNamedDeclaration",
                declaration=None,
                specifiers=specifiers,
                source=source,
                start=start.start,
                end=end.end,
            )
        declaration = self._parse_statement_list_item()
        return Node(
            "ExportNamedDeclaration",
            declaration=declaration,
            specifiers=[],
            source=None,
            start=start.start,
            end=declaration.end,
        )

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self, no_in: bool = False) -> Node:
        expression = self._parse_assignment_expression(no_in=no_in)
        if self._at_punct(","):
            expressions = [expression]
            while self._eat_punct(","):
                expressions.append(self._parse_assignment_expression(no_in=no_in))
            return Node(
                "SequenceExpression",
                expressions=expressions,
                start=expressions[0].start,
                end=expressions[-1].end,
            )
        return expression

    def _parse_assignment_expression(self, no_in: bool = False) -> Node:
        arrow = self._try_parse_arrow_function()
        if arrow is not None:
            return arrow
        if self._at_keyword("yield") and self.in_function:
            return self._parse_yield()
        left = self._parse_conditional_expression(no_in=no_in)
        if self.token.type is TokenType.PUNCTUATOR and self.token.value in _ASSIGNMENT_OPERATORS:
            operator = self._advance().value
            if operator == "=":
                left = self._reinterpret_as_pattern(left, assignment=True)
            right = self._parse_assignment_expression(no_in=no_in)
            return Node(
                "AssignmentExpression",
                operator=operator,
                left=left,
                right=right,
                start=left.start,
                end=right.end,
            )
        return left

    def _parse_yield(self) -> Node:
        start = self._expect_keyword("yield")
        delegate = self._eat_punct("*")
        argument = None
        if (
            not self._newline_before()
            and not self._at_punct(")")
            and not self._at_punct("]")
            and not self._at_punct("}")
            and not self._at_punct(",")
            and not self._at_punct(";")
            and self.token.type is not TokenType.EOF
        ):
            argument = self._parse_assignment_expression()
        end = argument.end if argument is not None else start.end
        return Node(
            "YieldExpression", argument=argument, delegate=delegate, start=start.start, end=end
        )

    def _try_parse_arrow_function(self) -> Node | None:
        """Detect `x => ...`, `(a, b) => ...` and `async (...) => ...`."""
        token = self.token
        is_async = False
        offset = 0
        if (
            token.type is TokenType.IDENTIFIER
            and token.value == "async"
            and self._peek().line == token.line
            and (
                self._peek().type is TokenType.IDENTIFIER
                or (self._peek().type is TokenType.PUNCTUATOR and self._peek().value == "(")
            )
        ):
            # Only treat as async-arrow if the parameter list is followed by =>.
            is_async = True
            offset = 1
        probe = self._peek(offset) if offset else token
        if probe.type is TokenType.IDENTIFIER:
            after = self._peek(offset + 1)
            if after.type is TokenType.PUNCTUATOR and after.value == "=>":
                if is_async:
                    self._advance()
                param = self._parse_identifier_name()
                return self._finish_arrow([param], is_async)
            return None
        if probe.type is TokenType.PUNCTUATOR and probe.value == "(":
            close = self._find_matching_paren(self.index + offset)
            if close is None:
                return None
            after = self.tokens[min(close + 1, len(self.tokens) - 1)]
            if not (after.type is TokenType.PUNCTUATOR and after.value == "=>"):
                return None
            if is_async:
                self._advance()
            params = self._parse_function_params()
            return self._finish_arrow(params, is_async)
        return None

    def _find_matching_paren(self, open_index: int) -> int | None:
        return self._paren_match.get(open_index)

    def _finish_arrow(self, params: list[Node], is_async: bool) -> Node:
        self._expect_punct("=>")
        if self._at_punct("{"):
            self.in_function += 1
            body = self._parse_block()
            self.in_function -= 1
            expression = False
        else:
            self.in_function += 1
            body = self._parse_assignment_expression()
            self.in_function -= 1
            expression = True
        start = params[0].start if params else body.start
        return Node(
            "ArrowFunctionExpression",
            id=None,
            params=params,
            body=body,
            expression=expression,
            generator=False,
            start=start,
            end=body.end,
            **{"async": is_async},
        )

    def _parse_conditional_expression(self, no_in: bool = False) -> Node:
        test = self._parse_binary_expression(0, no_in=no_in)
        if self._eat_punct("?"):
            consequent = self._parse_assignment_expression()
            self._expect_punct(":")
            alternate = self._parse_assignment_expression(no_in=no_in)
            return Node(
                "ConditionalExpression",
                test=test,
                consequent=consequent,
                alternate=alternate,
                start=test.start,
                end=alternate.end,
            )
        return test

    def _binary_op_precedence(self, no_in: bool) -> tuple[str, int] | None:
        token = self.token
        if token.type is TokenType.PUNCTUATOR and token.value in _BINARY_PRECEDENCE:
            return token.value, _BINARY_PRECEDENCE[token.value]
        if token.type is TokenType.KEYWORD and token.value in ("instanceof", "in"):
            if token.value == "in" and no_in:
                return None
            return token.value, _BINARY_PRECEDENCE[token.value]
        return None

    def _parse_binary_expression(self, min_precedence: int, no_in: bool = False) -> Node:
        left = self._parse_unary_expression()
        while True:
            op_info = self._binary_op_precedence(no_in)
            if op_info is None:
                break
            operator, precedence = op_info
            if precedence < min_precedence:
                break
            self._advance()
            # ** is right-associative; everything else left-associative.
            next_min = precedence if operator == "**" else precedence + 1
            right = self._parse_binary_expression(next_min, no_in=no_in)
            node_type = "LogicalExpression" if operator in ("&&", "||", "??") else "BinaryExpression"
            left = Node(
                node_type,
                operator=operator,
                left=left,
                right=right,
                start=left.start,
                end=right.end,
            )
        return left

    def _parse_unary_expression(self) -> Node:
        token = self.token
        if (
            token.type is TokenType.PUNCTUATOR and token.value in ("+", "-", "~", "!")
        ) or (
            token.type is TokenType.KEYWORD and token.value in ("typeof", "void", "delete")
        ):
            self._advance()
            argument = self._parse_unary_expression()
            return Node(
                "UnaryExpression",
                operator=token.value,
                argument=argument,
                prefix=True,
                start=token.start,
                end=argument.end,
            )
        if token.type is TokenType.PUNCTUATOR and token.value in ("++", "--"):
            self._advance()
            argument = self._parse_unary_expression()
            return Node(
                "UpdateExpression",
                operator=token.value,
                argument=argument,
                prefix=True,
                start=token.start,
                end=argument.end,
            )
        if token.type is TokenType.KEYWORD and token.value == "await" and self.in_function:
            self._advance()
            argument = self._parse_unary_expression()
            return Node(
                "AwaitExpression", argument=argument, start=token.start, end=argument.end
            )
        expression = self._parse_postfix_expression()
        return expression

    def _parse_postfix_expression(self) -> Node:
        expression = self._parse_left_hand_side_expression(allow_call=True)
        if (
            self.token.type is TokenType.PUNCTUATOR
            and self.token.value in ("++", "--")
            and not self._newline_before()
        ):
            operator = self._advance()
            expression = Node(
                "UpdateExpression",
                operator=operator.value,
                argument=expression,
                prefix=False,
                start=expression.start,
                end=operator.end,
            )
        return expression

    def _parse_left_hand_side_expression(self, allow_call: bool = True) -> Node:
        if self._at_keyword("new"):
            expression = self._parse_new_expression()
        else:
            expression = self._parse_primary_expression()
        while True:
            if self._at_punct("."):
                self._advance()
                prop = self._parse_member_property_name()
                expression = Node(
                    "MemberExpression",
                    object=expression,
                    property=prop,
                    computed=False,
                    start=expression.start,
                    end=prop.end,
                )
            elif self._at_punct("?."):
                self._advance()
                if self._at_punct("("):
                    arguments = self._parse_arguments()
                    expression = Node(
                        "CallExpression",
                        callee=expression,
                        arguments=arguments,
                        optional=True,
                        start=expression.start,
                        end=self.tokens[self.index - 1].end,
                    )
                elif self._at_punct("["):
                    self._advance()
                    prop = self._parse_expression()
                    end = self._expect_punct("]")
                    expression = Node(
                        "MemberExpression",
                        object=expression,
                        property=prop,
                        computed=True,
                        optional=True,
                        start=expression.start,
                        end=end.end,
                    )
                else:
                    prop = self._parse_member_property_name()
                    expression = Node(
                        "MemberExpression",
                        object=expression,
                        property=prop,
                        computed=False,
                        optional=True,
                        start=expression.start,
                        end=prop.end,
                    )
            elif self._at_punct("["):
                self._advance()
                prop = self._parse_expression()
                end = self._expect_punct("]")
                expression = Node(
                    "MemberExpression",
                    object=expression,
                    property=prop,
                    computed=True,
                    start=expression.start,
                    end=end.end,
                )
            elif allow_call and self._at_punct("("):
                arguments = self._parse_arguments()
                expression = Node(
                    "CallExpression",
                    callee=expression,
                    arguments=arguments,
                    start=expression.start,
                    end=self.tokens[self.index - 1].end,
                )
            elif self.token.type is TokenType.TEMPLATE:
                quasi = self._parse_template_literal()
                expression = Node(
                    "TaggedTemplateExpression",
                    tag=expression,
                    quasi=quasi,
                    start=expression.start,
                    end=quasi.end,
                )
            else:
                break
        return expression

    def _parse_member_property_name(self) -> Node:
        token = self.token
        if token.type in (
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.BOOLEAN,
            TokenType.NULL,
        ):
            self._advance()
            return Node("Identifier", name=token.value, start=token.start, end=token.end)
        raise ParseError(f"Expected property name, got {token.value!r}", token)

    def _parse_new_expression(self) -> Node:
        start = self._expect_keyword("new")
        if self._at_punct("."):
            self._advance()
            prop = self._parse_identifier_name()
            return Node(
                "MetaProperty",
                meta=Node("Identifier", name="new", start=start.start, end=start.end),
                property=prop,
                start=start.start,
                end=prop.end,
            )
        callee = self._parse_left_hand_side_expression(allow_call=False)
        arguments: list[Node] = []
        end = callee.end
        if self._at_punct("("):
            arguments = self._parse_arguments()
            end = self.tokens[self.index - 1].end
        return Node(
            "NewExpression",
            callee=callee,
            arguments=arguments,
            start=start.start,
            end=end,
        )

    def _parse_arguments(self) -> list[Node]:
        self._expect_punct("(")
        arguments: list[Node] = []
        while not self._at_punct(")"):
            if self._at_punct("..."):
                spread_start = self._advance()
                argument = self._parse_assignment_expression()
                arguments.append(
                    Node(
                        "SpreadElement",
                        argument=argument,
                        start=spread_start.start,
                        end=argument.end,
                    )
                )
            else:
                arguments.append(self._parse_assignment_expression())
            if not self._at_punct(")"):
                self._expect_punct(",")
        self._expect_punct(")")
        return arguments

    def _parse_primary_expression(self) -> Node:
        token = self.token
        if token.type is TokenType.NUMERIC or token.type is TokenType.STRING:
            self._advance()
            return self._literal_from_token(token)
        if token.type is TokenType.BOOLEAN:
            self._advance()
            return Node(
                "Literal",
                value=token.value == "true",
                raw=token.value,
                start=token.start,
                end=token.end,
            )
        if token.type is TokenType.NULL:
            self._advance()
            return Node("Literal", value=None, raw="null", start=token.start, end=token.end)
        if token.type is TokenType.REGULAR_EXPRESSION:
            self._advance()
            return Node(
                "Literal",
                value=None,
                raw=token.value,
                regex={"pattern": token.extra["pattern"], "flags": token.extra["flags"]},
                start=token.start,
                end=token.end,
            )
        if token.type is TokenType.TEMPLATE:
            return self._parse_template_literal()
        if token.type is TokenType.IDENTIFIER:
            if (
                token.value == "async"
                and self._peek().type is TokenType.KEYWORD
                and self._peek().value == "function"
                and self._peek().line == token.line
            ):
                return self._parse_function(declaration=False)
            self._advance()
            return Node("Identifier", name=token.value, start=token.start, end=token.end)
        if token.type is TokenType.KEYWORD:
            if token.value == "this":
                self._advance()
                return Node("ThisExpression", start=token.start, end=token.end)
            if token.value == "super":
                self._advance()
                return Node("Super", start=token.start, end=token.end)
            if token.value == "function":
                return self._parse_function(declaration=False)
            if token.value == "class":
                return self._parse_class(declaration=False)
            if token.value in ("let", "yield", "await", "import"):
                if token.value == "import":
                    self._advance()
                    return Node("Import", start=token.start, end=token.end)
                self._advance()
                return Node("Identifier", name=token.value, start=token.start, end=token.end)
        if token.type is TokenType.PUNCTUATOR:
            if token.value == "(":
                self._advance()
                expression = self._parse_expression()
                self._expect_punct(")")
                return expression
            if token.value == "[":
                return self._parse_array_literal()
            if token.value == "{":
                return self._parse_object_literal()
        if (
            token.type is TokenType.IDENTIFIER
            and token.value == "async"
            and self._peek().type is TokenType.KEYWORD
            and self._peek().value == "function"
        ):
            return self._parse_function(declaration=False)
        raise ParseError(f"Unexpected token {token.value!r}", token)

    def _literal_from_token(self, token: Token) -> Node:
        if token.type is TokenType.NUMERIC:
            raw = token.value
            try:
                lowered = raw.lower()
                if lowered.startswith("0x"):
                    value: float | int = int(raw, 16)
                elif lowered.startswith("0o"):
                    value = int(raw[2:], 8)
                elif lowered.startswith("0b"):
                    value = int(raw[2:], 2)
                elif raw.startswith("0") and raw.isdigit() and raw != "0" and all(c in "01234567" for c in raw[1:]):
                    value = int(raw, 8)
                else:
                    value = float(raw)
                    if value.is_integer() and "e" not in lowered and "." not in raw:
                        value = int(value)
            except ValueError:
                value = 0
            return Node("Literal", value=value, raw=raw, start=token.start, end=token.end)
        # String literal: decode escapes for `value`, keep raw.
        return Node(
            "Literal",
            value=_decode_string_literal(token.value),
            raw=token.value,
            start=token.start,
            end=token.end,
        )

    def _parse_array_literal(self) -> Node:
        start = self._expect_punct("[")
        elements: list[Node | None] = []
        while not self._at_punct("]"):
            if self._at_punct(","):
                self._advance()
                elements.append(None)
                continue
            if self._at_punct("..."):
                spread_start = self._advance()
                argument = self._parse_assignment_expression()
                elements.append(
                    Node(
                        "SpreadElement",
                        argument=argument,
                        start=spread_start.start,
                        end=argument.end,
                    )
                )
            else:
                elements.append(self._parse_assignment_expression())
            if not self._at_punct("]"):
                self._expect_punct(",")
        end = self._expect_punct("]")
        return Node("ArrayExpression", elements=elements, start=start.start, end=end.end)

    def _parse_object_literal(self) -> Node:
        start = self._expect_punct("{")
        properties: list[Node] = []
        while not self._at_punct("}"):
            properties.append(self._parse_object_property())
            if not self._at_punct("}"):
                self._expect_punct(",")
        end = self._expect_punct("}")
        return Node("ObjectExpression", properties=properties, start=start.start, end=end.end)

    def _parse_object_property(self) -> Node:
        token = self.token
        if self._at_punct("..."):
            spread_start = self._advance()
            argument = self._parse_assignment_expression()
            return Node(
                "SpreadElement", argument=argument, start=spread_start.start, end=argument.end
            )
        is_async = False
        generator = False
        kind = "init"
        if (
            token.type is TokenType.IDENTIFIER
            and token.value in ("get", "set")
            and not (
                self._peek().type is TokenType.PUNCTUATOR
                and self._peek().value in (",", ":", "}", "(")
            )
        ):
            kind = token.value
            self._advance()
        elif (
            token.type is TokenType.IDENTIFIER
            and token.value == "async"
            and not (
                self._peek().type is TokenType.PUNCTUATOR
                and self._peek().value in (",", ":", "}", "(")
            )
        ):
            is_async = True
            self._advance()
        if self._eat_punct("*"):
            generator = True
        key, computed = self._parse_property_key()
        if kind in ("get", "set") or self._at_punct("("):
            params = self._parse_function_params()
            self.in_function += 1
            body = self._parse_block()
            self.in_function -= 1
            value = Node(
                "FunctionExpression",
                id=None,
                params=params,
                body=body,
                generator=generator,
                start=key.start,
                end=body.end,
                **{"async": is_async},
            )
            return Node(
                "Property",
                key=key,
                value=value,
                kind=kind if kind in ("get", "set") else "init",
                method=kind == "init",
                shorthand=False,
                computed=computed,
                start=key.start,
                end=body.end,
            )
        if self._eat_punct(":"):
            value = self._parse_assignment_expression()
            return Node(
                "Property",
                key=key,
                value=value,
                kind="init",
                method=False,
                shorthand=False,
                computed=computed,
                start=key.start,
                end=value.end,
            )
        # Shorthand { x } or shorthand-with-default { x = 1 } (pattern form).
        value = key
        if self._at_punct("="):
            self._advance()
            default = self._parse_assignment_expression()
            value = Node(
                "AssignmentPattern", left=key, right=default, start=key.start, end=default.end
            )
        return Node(
            "Property",
            key=key,
            value=value,
            kind="init",
            method=False,
            shorthand=True,
            computed=computed,
            start=key.start,
            end=value.end,
        )

    def _parse_template_literal(self) -> Node:
        token = self.token
        if token.type is not TokenType.TEMPLATE:
            raise ParseError("Expected template literal", token)
        self._advance()
        raw = token.value
        quasis: list[Node] = []
        expressions: list[Node] = []
        # Split the raw template on top-level ${...} substitutions.  The
        # lexer's splitter understands strings, comments and nested
        # templates inside substitutions, so `${"}"}` cannot desync it.
        chunks, exprs = split_template(raw)
        for pos, chunk in enumerate(chunks):
            quasis.append(
                Node(
                    "TemplateElement",
                    value={"raw": chunk, "cooked": _decode_template_chunk(chunk)},
                    tail=pos == len(chunks) - 1,
                    start=token.start,
                    end=token.end,
                )
            )
        for expr_src in exprs:
            sub = Parser(expr_src)
            sub.in_function = self.in_function
            expression = sub._parse_expression()
            if sub.token.type is not TokenType.EOF:
                raise ParseError("Trailing tokens in template substitution", sub.token)
            # Offset positions so they stay within the outer token's range.
            expression.start = token.start
            expression.end = token.end
            expressions.append(expression)
        return Node(
            "TemplateLiteral",
            quasis=quasis,
            expressions=expressions,
            start=token.start,
            end=token.end,
        )

    # -- patterns ------------------------------------------------------------

    def _reinterpret_as_pattern(self, node: Node, assignment: bool = False) -> Node:
        """Convert an expression parsed in a binding position into a pattern."""
        if node.type == "ArrayExpression":
            elements = []
            for element in node.elements:
                if element is None:
                    elements.append(None)
                elif element.type == "SpreadElement":
                    elements.append(
                        Node(
                            "RestElement",
                            argument=self._reinterpret_as_pattern(element.argument, assignment),
                            start=element.start,
                            end=element.end,
                        )
                    )
                else:
                    elements.append(self._reinterpret_as_pattern(element, assignment))
            return Node("ArrayPattern", elements=elements, start=node.start, end=node.end)
        if node.type == "ObjectExpression":
            properties = []
            for prop in node.properties:
                if prop.type == "SpreadElement":
                    properties.append(
                        Node(
                            "RestElement",
                            argument=self._reinterpret_as_pattern(prop.argument, assignment),
                            start=prop.start,
                            end=prop.end,
                        )
                    )
                else:
                    properties.append(
                        Node(
                            "Property",
                            key=prop.key,
                            value=self._reinterpret_as_pattern(prop.value, assignment),
                            kind="init",
                            method=False,
                            shorthand=prop.shorthand,
                            computed=prop.computed,
                            start=prop.start,
                            end=prop.end,
                        )
                    )
            return Node("ObjectPattern", properties=properties, start=node.start, end=node.end)
        if node.type == "AssignmentExpression" and node.operator == "=":
            return Node(
                "AssignmentPattern",
                left=self._reinterpret_as_pattern(node.left, assignment),
                right=node.right,
                start=node.start,
                end=node.end,
            )
        if node.type in ("Identifier", "MemberExpression", "AssignmentPattern", "ArrayPattern", "ObjectPattern", "RestElement"):
            return node
        if assignment:
            # e.g. `(a, b) = ...` is invalid but parenthesised member chains are fine.
            return node
        raise ParseError(f"Invalid binding target of type {node.type}")


def _decode_string_literal(raw: str) -> str:
    """Decode a quoted JS string literal into its runtime value."""
    return _decode_escapes(raw[1:-1])


def _decode_template_chunk(raw: str) -> str:
    return _decode_escapes(raw)


_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "`": "`",
    "\\": "\\",
    "\n": "",
    "\r": "",
}


def _decode_escapes(text: str) -> str:
    out: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        index += 1
        if index >= length:
            break
        esc = text[index]
        if esc == "x" and index + 2 < length + 1:
            hex_digits = text[index + 1 : index + 3]
            try:
                out.append(chr(int(hex_digits, 16)))
                index += 3
                continue
            except ValueError:
                pass
        if esc == "u":
            if index + 1 < length and text[index + 1] == "{":
                close = text.find("}", index + 1)
                if close != -1:
                    try:
                        out.append(chr(int(text[index + 2 : close], 16)))
                        index = close + 1
                        continue
                    except ValueError:
                        pass
            hex_digits = text[index + 1 : index + 5]
            try:
                out.append(chr(int(hex_digits, 16)))
                index += 5
                continue
            except ValueError:
                pass
        out.append(_SIMPLE_ESCAPES.get(esc, esc))
        index += 1
    return "".join(out)


def parse(source: str) -> Node:
    """Parse JavaScript source text into an ESTree ``Program`` node."""
    return Parser(source).parse_program()
