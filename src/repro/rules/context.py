"""Shared analysis context for one file, with staged, lazy construction.

Rules declare how much structure they need (``text`` < ``tokens`` <
``ast``); the context materialises each layer on first use so the triage
path can answer "obviously minified" from the raw text without ever
lexing, and "hex-renamed" from the token stream without ever parsing.
When the full pipeline already built an :class:`EnhancedAST`, the context
wraps it and every layer is free.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter

from repro.flows.cfg import build_control_flow
from repro.flows.dfg import build_data_flow
from repro.flows.graph import EnhancedAST
from repro.js.ast_nodes import Node, iter_child_nodes
from repro.js.parser import Parser
from repro.js.scope import analyze_scopes
from repro.js.tokens import Token, TokenType

_MISSING = object()


class RuleContext:
    """Lazy per-file view shared by every rule evaluation.

    Parameters
    ----------
    source:
        Raw JavaScript text (required unless ``enhanced`` is given).
    enhanced:
        An already-built :class:`EnhancedAST` — the full-pipeline path
        passes the one it extracted features from, so rules never parse
        twice.
    data_flow:
        Whether :attr:`enhanced` may build data-flow edges when it has to
        parse itself (the triage path disables this: taint rules degrade
        gracefully and triage stays cheap).
    data_flow_timeout:
        Budget for the data-flow pass when it does run.
    """

    def __init__(
        self,
        source: str | None = None,
        enhanced: EnhancedAST | None = None,
        data_flow: bool = True,
        data_flow_timeout: float = 120.0,
    ) -> None:
        if source is None and enhanced is None:
            raise ValueError("RuleContext needs source text or an EnhancedAST")
        self._source = enhanced.source if enhanced is not None else source
        self._enhanced = enhanced
        self._data_flow = data_flow
        self._data_flow_timeout = data_flow_timeout
        self._tokens: list[Token] | None = enhanced.tokens if enhanced is not None else None
        self._token_list: list[Token] | None = None
        self._summary = None
        self._line_starts: list[int] | None = None
        self._nodes_by_type: dict[str, list[Node]] | None = None

    # -- layers ----------------------------------------------------------------

    @property
    def source(self) -> str:
        return self._source  # type: ignore[return-value]

    @property
    def tokens(self) -> list[Token]:
        """Token stream (lexes on demand; EOF excluded; cached)."""
        if self._token_list is None:
            if self._tokens is None:
                from repro.js.lexer import tokenize

                self._tokens = tokenize(self.source)
            self._token_list = [t for t in self._tokens if t.type is not TokenType.EOF]
        return self._token_list

    @property
    def summary(self):
        """One-pass :class:`~repro.js.lexer.TokenSummary` of the stream.

        Token-stage rules and the triage ambiguity gate read their
        aggregates (type histogram, identifier spellings) from here, so
        the stream is folded exactly once per file.
        """
        if self._summary is None:
            from repro.js.lexer import summarize_tokens

            self._summary = summarize_tokens(self.tokens)
        return self._summary

    @property
    def enhanced(self) -> EnhancedAST:
        """Enhanced AST (parses + builds flows on demand)."""
        if self._enhanced is None:
            parser = Parser(self.source)
            program = parser.parse_program()
            scope = analyze_scopes(program)
            control_flow = build_control_flow(program)
            data_flow = (
                build_data_flow(program, scope=scope, timeout=self._data_flow_timeout)
                if self._data_flow
                else None
            )
            self._enhanced = EnhancedAST(
                source=self.source,
                program=program,
                tokens=parser.tokens,
                comments=parser.comments,
                scope=scope,
                control_flow=control_flow,
                data_flow=data_flow,
                flow_timeout=self._data_flow and data_flow is None,
            )
            self._tokens = self._enhanced.tokens
        return self._enhanced

    @property
    def interproc(self):
        """Interprocedural summaries (lazy, budgeted, cached on the AST).

        Only the AST-stage decoder rules touch this, and they pre-gate on
        cheap structural checks first — rules-only triage never pays for
        the whole-program pass unless a candidate decoder shape exists.
        """
        return self.enhanced.interproc()

    @property
    def program(self) -> Node:
        return self.enhanced.program

    # -- indices ---------------------------------------------------------------

    def nodes(self, *types: str) -> list[Node]:
        """All AST nodes of the given types (one cached walk, any order)."""
        if self._nodes_by_type is None:
            index: dict[str, list[Node]] = {}
            stack = [self.program]
            while stack:
                node = stack.pop()
                index.setdefault(node.type, []).append(node)
                stack.extend(iter_child_nodes(node))
            self._nodes_by_type = index
        if len(types) == 1:
            return self._nodes_by_type.get(types[0], [])
        out: list[Node] = []
        for node_type in types:
            out.extend(self._nodes_by_type.get(node_type, []))
        return out

    @property
    def identifier_values(self) -> list[str]:
        """Identifier token spellings (token layer — no parse needed)."""
        return self.summary.identifier_values

    def token_counts(self) -> Counter:
        """Token-type histogram (token layer)."""
        return Counter(self.summary.type_counts)

    # -- locations -------------------------------------------------------------

    def line_of(self, offset: int) -> tuple[int, int]:
        """(1-based line, 1-based column) for a character offset."""
        if self._line_starts is None:
            starts = [0]
            find = self.source.find
            pos = find("\n")
            while pos != -1:
                starts.append(pos + 1)
                pos = find("\n", pos + 1)
            self._line_starts = starts
        index = bisect_right(self._line_starts, max(0, offset)) - 1
        return index + 1, offset - self._line_starts[index] + 1

    def location(self, item: Node | Token):
        """A :class:`~repro.rules.findings.Location` for a node or token."""
        from repro.rules.findings import Location

        if isinstance(item, Node):
            start = item.get("start") or 0
            end = item.get("end") or start
        else:
            start, end = item.start, item.end
        line, column = self.line_of(start)
        return Location(line=line, column=column, start=start, end=end)

    def snippet(self, node: Node, limit: int = 60) -> str:
        """The source text of a node, truncated for evidence strings."""
        start = node.get("start") or 0
        end = node.get("end") or start
        text = " ".join(self.source[start:end].split())
        return text if len(text) <= limit else text[: limit - 1] + "…"


# -- small AST helpers shared by the rule catalog -----------------------------


def prop_name(member: Node) -> str | None:
    """The property name of a member access, through both spellings.

    Obfuscated code flips freely between ``x.push`` and ``x["push"]`` —
    signatures must match either.
    """
    prop = member.property
    if not member.get("computed") and prop.type == "Identifier":
        return prop.name
    if member.get("computed") and prop.type == "Literal" and isinstance(prop.value, str):
        return prop.value
    return None


def callee_name(call: Node) -> str | None:
    """The plain identifier a call invokes, or ``None``."""
    callee = call.callee
    return callee.name if callee.type == "Identifier" else None


def literal_value(node: Node) -> object:
    """The value of a ``Literal`` node, else :data:`_MISSING`."""
    if node.type == "Literal":
        return node.value
    return _MISSING


def is_constant_false(test: Node) -> bool:
    """True when a branch test statically evaluates to false.

    Covers the opaque-predicate shapes dead-code injectors emit: bare
    falsy literals and *equality* comparisons of two same-type literals.
    Ordering comparisons and mixed-type operands are deliberately out of
    scope — organically written (and synthetically generated) regular
    code contains nonsense like ``if ("submit" > 3.41)``, and JavaScript
    coercion semantics make those unsafe to fold statically.
    """
    if test.type == "Literal":
        return not test.value
    if test.type == "BinaryExpression":
        left, right = literal_value(test.left), literal_value(test.right)
        if left is _MISSING or right is _MISSING:
            return False
        if type(left) is not type(right):
            return False
        op = test.operator
        if op in ("===", "=="):
            return not (left == right)
        if op in ("!==", "!="):
            return not (left != right)
    return False


def walk_subtree(node: Node):
    """Pre-order generator over one subtree (local, allocation-light)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(iter_child_nodes(current))
