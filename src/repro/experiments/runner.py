"""End-to-end experiment runner.

``python -m repro.experiments.runner [--scale small|medium]`` trains the
detectors once and regenerates every table and figure, printing the paper
value next to each measured value.  The benchmark suite runs the same
functions with assertions on the shape of the results.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import accuracy, fig1, fig2_3, fig4, fig5, fig6_7_8, summary, table1
from repro.experiments.common import ExperimentContext, Scale

SCALES = {
    "tiny": Scale(n_regular=24, level1_per_class=12, level2_per_technique=12, n_estimators=12),
    "small": Scale(n_regular=60, level1_per_class=30, level2_per_technique=30, n_estimators=16),
    "medium": Scale(n_regular=150, level1_per_class=75, level2_per_technique=75, n_estimators=24),
}


def run_all(
    scale_name: str = "small",
    cache_dir: str | None = None,
    out=sys.stdout,
    n_workers: int = 1,
    train_jobs: int = 1,
) -> dict:
    """Train once, then regenerate every table and figure.

    ``n_workers > 1`` runs corpus feature extraction across a process pool
    (the batch engine); the context's engine also carries an LRU feature
    cache shared by all corpus measurements.  ``train_jobs > 1`` fits the
    forest trees across a process pool — bit-identical to serial training
    thanks to per-tree ``SeedSequence`` seeds.
    """
    scale = SCALES[scale_name]
    t0 = time.time()
    print(f"[runner] training detectors at scale {scale_name!r} …", file=out)
    context = ExperimentContext.get(
        scale, cache_dir=cache_dir, n_workers=n_workers, train_jobs=train_jobs
    )
    print(f"[runner] trained in {time.time() - t0:.0f}s", file=out)

    results: dict = {}

    results["table1"] = table1.run()
    print(table1.report(results["table1"]), file=out)
    print(file=out)

    ts1 = accuracy.run_test_set_1(context)
    ts2 = accuracy.run_test_set_2(context)
    ts3 = accuracy.run_test_set_3(context)
    regular = accuracy.run_regular_corpus_check(context)
    results["accuracy"] = {"ts1": ts1, "ts2": ts2, "ts3": ts3, "regular": regular}
    print(accuracy.report(ts1, ts2, ts3, regular), file=out)
    print(file=out)

    fig1a = fig1.run_topk_curves(ts2["proba"], ts2["Y"])
    fig1b = fig1.run_thresholded_curves(ts2["proba"], ts2["Y"])
    fig1c = fig1.run_detectable_techniques(ts2["proba"], ts2["Y"])
    results["fig1"] = {"a": fig1a, "b": fig1b, "c": fig1c}
    print(fig1.report(fig1a, fig1b, fig1c), file=out)
    print(file=out)

    alexa = fig2_3.run_alexa(context)
    npm = fig2_3.run_npm(context)
    results["fig2"] = alexa
    results["fig3"] = npm
    print(fig2_3.report(alexa, "alexa"), file=out)
    print(fig2_3.report(npm, "npm"), file=out)
    print(file=out)

    alexa_ranks = fig4.run_alexa_ranks(context)
    npm_ranks = fig4.run_npm_ranks(context)
    results["fig4"] = {"alexa": alexa_ranks, "npm": npm_ranks}
    print(fig4.report(alexa_ranks, npm_ranks), file=out)
    print(file=out)

    malicious = fig5.run(context)
    results["fig5"] = malicious
    print(fig5.report(malicious), file=out)
    print(file=out)

    alexa_time = fig6_7_8.run_alexa(context)
    npm_time = fig6_7_8.run_npm(context)
    results["fig6_7_8"] = {"alexa": alexa_time, "npm": npm_time}
    print(fig6_7_8.report(alexa_time, npm_time), file=out)
    print(file=out)

    results["summary"] = summary.run(context)
    print(summary.report(results["summary"]), file=out)

    return results


def main(argv: list[str] | None = None) -> int:
    """argparse entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--cache-dir", default=".cache")
    parser.add_argument(
        "--workers", type=int, default=1, help="feature-extraction process count"
    )
    parser.add_argument(
        "--train-jobs", type=int, default=1, help="forest-training process count"
    )
    args = parser.parse_args(argv)
    run_all(
        args.scale,
        cache_dir=args.cache_dir,
        n_workers=args.workers,
        train_jobs=args.train_jobs,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
