"""Benchmark: Figure 3 / §IV-B2 — code transformations on npm Top 10k."""

from repro.experiments import fig2_3


def test_fig3_npm(benchmark, context):
    result = benchmark.pedantic(
        fig2_3.run_npm, args=(context,), kwargs={"n_scripts": 200}, rounds=1, iterations=1
    )
    print()
    print(fig2_3.report(result, "npm"))
    measurement = result["measurement"]

    # Paper: only 8.7% of npm scripts transformed — an order of magnitude
    # below Alexa.  Band: detector-recovered rate stays low.
    assert measurement.transformed_rate <= 0.30
    assert abs(measurement.transformed_rate - result["planted_transformed_rate"]) <= 0.12

    # Minification still leads the technique mix (58.34% / 36.57%).
    probs = measurement.technique_probability
    assert probs["minification_simple"] >= probs["minification_advanced"] * 0.8
    top = max(probs, key=probs.get)
    assert top in ("minification_simple", "minification_advanced")


def test_alexa_vs_npm_contrast(benchmark, context):
    """The headline §IV contrast: Alexa ≫ npm in transformed share."""
    from repro.experiments.fig2_3 import run_alexa, run_npm

    def run():
        return run_alexa(context, n_scripts=100), run_npm(context, n_scripts=100)

    alexa, npm = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = (
        alexa["measurement"].transformed_rate
        / max(npm["measurement"].transformed_rate, 1e-6)
    )
    print(f"\nAlexa/npm transformed ratio: {ratio:.1f}x (paper: ~7.9x)")
    assert ratio >= 2.5
