"""End-to-end detector tests (uses the session-scoped trained detector)."""

import random

import numpy as np
import pytest

from repro.corpus.generator import generate_corpus
from repro.detector import (
    LEVEL1_LABELS,
    LEVEL2_LABELS,
    TransformationDetector,
    level1_labels_for,
    level1_vector,
    level2_vector,
)
from repro.detector.level2 import DEFAULT_K, DEFAULT_THRESHOLD
from repro.transform.base import TECHNIQUES, Technique, get_transformer


class TestLabels:
    def test_level1_vocabulary(self):
        assert LEVEL1_LABELS == ("regular", "minified", "obfuscated")

    def test_level2_vocabulary_matches_techniques(self):
        assert LEVEL2_LABELS == tuple(t.value for t in TECHNIQUES)
        assert len(LEVEL2_LABELS) == 10

    def test_minified_mapping(self):
        assert level1_labels_for({Technique.MINIFICATION_SIMPLE}) == {"minified"}

    def test_obfuscated_mapping(self):
        assert level1_labels_for({Technique.STRING_OBFUSCATION}) == {"obfuscated"}

    def test_both_labels(self):
        labels = level1_labels_for(
            {Technique.SELF_DEFENDING, Technique.MINIFICATION_SIMPLE}
        )
        assert labels == {"minified", "obfuscated"}

    def test_empty_is_regular(self):
        assert level1_labels_for(set()) == {"regular"}

    def test_level1_vector(self):
        assert level1_vector({"regular"}).tolist() == [1, 0, 0]
        assert level1_vector({"minified", "obfuscated"}).tolist() == [0, 1, 1]

    def test_level2_vector(self):
        vector = level2_vector({Technique.GLOBAL_ARRAY, "minification_simple"})
        assert vector.sum() == 2
        assert vector[LEVEL2_LABELS.index("global_array")] == 1


class TestTrainingData:
    def test_build_creates_all_variants(self, training_data):
        assert set(training_data.variants) == set(TECHNIQUES)
        for pool in training_data.variants.values():
            assert len(pool) == len(training_data.regular)

    def test_variant_labels_from_transformer(self, training_data):
        for technique, pool in training_data.variants.items():
            transformer = get_transformer(technique)
            assert all(labels == transformer.labels for _src, labels in pool)

    def test_level1_set_balanced(self, training_data):
        rng = random.Random(1)
        labeled = training_data.level1_set(8, rng)
        regular_rows = (labeled.Y[:, 0] == 1).sum()
        assert regular_rows == 8
        assert labeled.Y.shape[1] == 3

    def test_level2_set_shape(self, training_data):
        rng = random.Random(2)
        labeled = training_data.level2_set(4, rng)
        assert len(labeled.sources) == 4 * 10
        assert labeled.Y.shape == (40, 10)

    def test_exclusion(self, training_data):
        rng = random.Random(3)
        exclude = set(range(len(training_data.regular) - 4))
        labeled = training_data.level2_set(100, rng, exclude=exclude)
        assert len(labeled.sources) == 4 * 10  # only 4 indices available


class TestLevel1(object):
    def test_regular_detection(self, trained_detector, regular_corpus):
        labels = trained_detector.level1.predict_labels(regular_corpus)
        accuracy = sum(1 for ls in labels if ls == {"regular"}) / len(labels)
        assert accuracy >= 0.8

    def test_minified_detection(self, trained_detector, regular_corpus, rng):
        minified = [
            get_transformer("minification_simple").transform(src, rng)
            for src in regular_corpus[:6]
        ]
        flags = trained_detector.level1.is_transformed(minified)
        assert flags.mean() >= 0.8

    def test_obfuscated_detection(self, trained_detector, regular_corpus, rng):
        obfuscated = [
            get_transformer("global_array").transform(src, rng)
            for src in regular_corpus[:6]
        ]
        labels = trained_detector.level1.predict_labels(obfuscated)
        hits = sum(1 for ls in labels if "obfuscated" in ls)
        assert hits >= 4

    def test_proba_shape(self, trained_detector, regular_corpus):
        proba = trained_detector.level1.predict_proba(regular_corpus[:3])
        assert proba.shape == (3, 3)

    def test_unfitted_raises(self):
        from repro.detector.level1 import Level1Detector

        with pytest.raises(RuntimeError):
            Level1Detector().predict_labels(["var x = 1;"])

    def test_labels_never_empty(self, trained_detector, regular_corpus):
        for labels in trained_detector.level1.predict_labels(regular_corpus[:4]):
            assert labels


class TestLevel2:
    def test_technique_recognition_top1(self, trained_detector, regular_corpus, rng):
        hits = 0
        total = 0
        for technique in (
            "minification_simple",
            "identifier_obfuscation",
            "control_flow_flattening",
            "no_alphanumeric",
        ):
            transformer = get_transformer(technique)
            sources = [transformer.transform(s, rng) for s in regular_corpus[:3]]
            proba = trained_detector.level2.predict_proba(sources)
            for row in proba:
                top1 = LEVEL2_LABELS[int(np.argmax(row))]
                total += 1
                if Technique(top1) in transformer.labels:
                    hits += 1
        assert hits / total >= 0.7

    def test_thresholded_topk_interface(self, trained_detector, regular_corpus, rng):
        minified = get_transformer("minification_simple").transform(
            regular_corpus[0], rng
        )
        results = trained_detector.level2.predict_techniques([minified])
        assert len(results) == 1
        for name, probability in results[0]:
            assert name in LEVEL2_LABELS
            assert probability >= DEFAULT_THRESHOLD
        assert len(results[0]) <= DEFAULT_K

    def test_defaults_match_paper(self):
        assert DEFAULT_THRESHOLD == 0.10
        assert DEFAULT_K == 4

    def test_unfitted_raises(self):
        from repro.detector.level2 import Level2Detector

        with pytest.raises(RuntimeError):
            Level2Detector().predict_proba(["var x = 1;"])


class TestPipelineFacade:
    def test_classify_regular(self, trained_detector, regular_corpus):
        result = trained_detector.classify(regular_corpus[0])
        assert result.transformed in (True, False)
        if not result.transformed:
            assert result.techniques == []

    def test_classify_transformed(self, trained_detector, regular_corpus, rng):
        out = get_transformer("minification_simple").transform(regular_corpus[1], rng)
        result = trained_detector.classify(out)
        assert result.transformed
        assert result.techniques

    def test_classify_many_order(self, trained_detector, regular_corpus, rng):
        minified = get_transformer("minification_simple").transform(
            regular_corpus[2], rng
        )
        results = trained_detector.classify_many([regular_corpus[0], minified])
        assert len(results) == 2

    def test_str_rendering(self, trained_detector, regular_corpus):
        result = trained_detector.classify(regular_corpus[3])
        assert isinstance(str(result), str)

    def test_save_load_roundtrip(self, trained_detector, tmp_path, regular_corpus):
        path = tmp_path / "detector.pkl"
        trained_detector.save(path)
        loaded = TransformationDetector.load(path)
        original = trained_detector.level1.predict_proba(regular_corpus[:2])
        restored = loaded.level1.predict_proba(regular_corpus[:2])
        assert np.allclose(original, restored)

    def test_load_wrong_type_raises(self, tmp_path):
        import pickle

        from repro.detector.pipeline import ModelFormatError

        path = tmp_path / "bogus.pkl"
        path.write_bytes(pickle.dumps({"not": "a detector"}))
        with pytest.raises(ModelFormatError):
            TransformationDetector.load(path)

    def test_load_rejects_format_version_mismatch(self, trained_detector, tmp_path):
        import pickle

        from repro.detector.pipeline import MODEL_FORMAT_VERSION, ModelFormatError

        path = tmp_path / "detector.pkl"
        trained_detector.save(path)
        payload = pickle.loads(path.read_bytes())
        assert payload["format_version"] == MODEL_FORMAT_VERSION
        payload["format_version"] = MODEL_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ModelFormatError, match="format version"):
            TransformationDetector.load(path)

    def test_load_rejects_feature_dim_mismatch(self, trained_detector, tmp_path):
        import pickle

        from repro.detector.pipeline import ModelFormatError

        path = tmp_path / "detector.pkl"
        trained_detector.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["level2_features"] = payload["level2_features"] + 7
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ModelFormatError, match="feature spaces have diverged"):
            TransformationDetector.load(path)

    def test_load_accepts_legacy_bare_pickle(self, trained_detector, tmp_path):
        import pickle

        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(trained_detector))
        loaded = TransformationDetector.load(path)
        assert isinstance(loaded, TransformationDetector)


class TestGeneralization:
    def test_packer_detected_as_transformed(self, trained_detector, regular_corpus, rng):
        from repro.transform.packer import pack

        packed = [pack(src, rng) for src in regular_corpus[:5]]
        flags = trained_detector.level1.is_transformed(packed)
        assert flags.mean() >= 0.6  # held-out tool still flagged

    def test_fresh_regular_not_flagged(self, trained_detector):
        fresh = generate_corpus(6, seed=31337)
        flags = trained_detector.level1.is_transformed(fresh)
        assert flags.mean() <= 0.35
