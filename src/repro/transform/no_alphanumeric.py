"""No-alphanumeric obfuscation (§II-A: data obfuscation, JSFuck [27], [36]).

Rewrites a whole script using only the six characters ``[ ] ( ) ! +``.
The encoding follows the classic JSFuck construction:

- booleans / ``undefined`` / ``NaN`` / numbers from ``[]``, ``!`` and ``+``,
- letters plucked out of the string forms of those values
  (``(![]+[])[+!+[]]`` is ``"a"``), of native-function sources
  (``[]["find"]+[]`` → ``"function find() { [native code] }"``) and of
  ``[]["entries"]()`` (``"[object Array Iterator]"``),
- remaining lowercase letters via ``Number.prototype.toString(36)``,
- everything else through an ``unescape("%XX")`` bootstrap built from the
  ``Function`` constructor reached as ``[]["flat"]["constructor"]``,
- and finally ``Function(<encoded source>)()`` to run the payload.

Indices into the native-function strings assume the V8 formatting
(``function find() { [native code] }``), like JSFuck itself does.  The
directly-mapped subset plus the ``toString``/``unescape`` fallbacks is
runtime-faithful; syntactically the output is exactly the six-character
footprint the paper's detector learns.
"""

from __future__ import annotations

import random

from repro.transform.base import Technique, Transformer, register
from repro.transform.minify_simple import SimpleMinifier


def _number(value: int) -> str:
    """A JSFuck expression evaluating to the integer ``value``."""
    if value == 0:
        return "+[]"
    if value <= 9:
        return "+!+[]" if value == 1 else "+".join(["!+[]"] * value)
    digits = str(value)
    return "+(" + "+".join("[" + _number(int(d)) + "]" for d in digits) + ")"


def _digit_string(digit: int) -> str:
    """A JSFuck expression evaluating to the single-digit string."""
    return "(" + _number(digit) + "+[])"


class JSFuckEncoder:
    """Character-level JSFuck encoder with memoised spelled strings."""

    # String-valued atom expressions and the characters they expose.
    _FALSE = "(![]+[])"  # "false"
    _TRUE = "(!![]+[])"  # "true"
    _UNDEFINED = "([][[]]+[])"  # "undefined"
    _NAN = "(+[![]]+[])"  # "NaN"

    def __init__(self) -> None:
        self._char_cache: dict[str, str] = {}
        self._string_cache: dict[str, str] = {}
        self._install_base_map()

    # -- base character map --------------------------------------------------

    def _install_base_map(self) -> None:
        def at(atom: str, index: int) -> str:
            return atom + "[" + _number(index) + "]"

        mapping = {
            "f": at(self._FALSE, 0),
            "a": at(self._FALSE, 1),
            "l": at(self._FALSE, 2),
            "s": at(self._FALSE, 3),
            "e": at(self._FALSE, 4),
            "t": at(self._TRUE, 0),
            "r": at(self._TRUE, 1),
            "u": at(self._TRUE, 2),
            "n": at(self._UNDEFINED, 1),
            "d": at(self._UNDEFINED, 2),
            "i": at(self._UNDEFINED, 5),
            "N": at(self._NAN, 0),
        }
        self._char_cache.update(mapping)
        # "function find() { [native code] }" (V8 formatting, as JSFuck).
        find = "([][" + self._spell_with(mapping, "find") + "]+[])"
        native = "function find() { [native code] }"
        for char, index in (
            ("o", 6),
            ("c", 3),
            (" ", 8),
            ("(", 13),
            (")", 14),
            ("{", 16),
            ("[", 18),
            ("v", 23),
            ("]", 30),
            ("}", 32),
        ):
            assert native[index] == char, (char, index)
            self._char_cache.setdefault(char, find + "[" + _number(index) + "]")
        # "[object Array Iterator]" via []["entries"]().
        entries = "([][" + self.spell("entries") + "]()+[])"
        iterator = "[object Array Iterator]"
        for char, index in (("b", 2), ("j", 3), ("A", 8), ("y", 12), ("I", 14)):
            assert iterator[index] == char, (char, index)
            self._char_cache.setdefault(char, entries + "[" + _number(index) + "]")
        # "function String() { [native code] }" via ([]+[])["constructor"].
        string_ctor = "(([]+[])[" + self.spell("constructor") + "]+[])"
        string_native = "function String() { [native code] }"
        for char, index in (("S", 9), ("g", 14)):
            assert string_native[index] == char, (char, index)
            self._char_cache.setdefault(char, string_ctor + "[" + _number(index) + "]")

    def _spell_with(self, mapping: dict[str, str], text: str) -> str:
        return "+".join(mapping[char] for char in text)

    # -- public encoding -------------------------------------------------------

    def char(self, char: str) -> str:
        """A JSFuck expression evaluating to the one-character string."""
        cached = self._char_cache.get(char)
        if cached is not None:
            return cached
        if char.isdigit():
            expression = _digit_string(int(char))
        elif "a" <= char <= "z":
            # (<36-base value>)["toString"](36)
            expression = (
                "("
                + _number(int(char, 36))
                + ")["
                + self.spell("toString")
                + "]("
                + _number(36)
                + ")"
            )
        else:
            expression = self._unescape_char(char)
        self._char_cache[char] = expression
        return expression

    def spell(self, text: str) -> str:
        """A JSFuck expression evaluating to the string ``text``."""
        if not text:
            return "([]+[])"
        cached = self._string_cache.get(text)
        if cached is None:
            cached = "+".join(self.char(char) for char in text)
            self._string_cache[text] = cached
        return cached

    def _function_constructor(self) -> str:
        return "[][" + self.spell("flat") + "][" + self.spell("constructor") + "]"

    def _unescape_char(self, char: str) -> str:
        """``unescape("%XX")`` bootstrap for arbitrary characters."""
        if "%" not in self._char_cache:
            # escape("[")[0] === "%"
            escape_fn = self._function_constructor() + "(" + self.spell("return escape") + ")()"
            self._char_cache["%"] = (
                escape_fn + "(" + self.char("[") + ")[" + _number(0) + "]"
            )
        unescape_fn = (
            self._function_constructor() + "(" + self.spell("return unescape") + ")()"
        )
        code = ord(char)
        if code <= 0xFF:
            hex_text = f"{code:02x}"
            percent_encoded = self.char("%") + "+" + self.spell(hex_text)
        else:
            hex_text = f"{code:04x}"
            percent_encoded = (
                self.char("%") + "+" + self.char("u") + "+" + self.spell(hex_text)
            )
        return unescape_fn + "(" + percent_encoded + ")"

    def encode_program(self, source: str) -> str:
        """``Function(<encoded source>)()`` over the whole script."""
        payload = self.spell(source)
        return self._function_constructor() + "(" + payload + ")()"


def _truncate_at_parse_boundary(minified: str, limit: int) -> str:
    """The longest prefix up to ``limit`` chars that is a valid program.

    A bare ``rfind(";")`` cut can land inside a ``for(;;)`` header and
    encode a payload that is not executable JS; candidate cuts are tried
    longest-first and validated with a real parse.
    """
    from repro.js.parser import parse

    cuts = sorted(
        {
            index + 1
            for index, char in enumerate(minified[:limit])
            if char in ";}"
        },
        reverse=True,
    )
    for cut in cuts[:25]:
        prefix = minified[:cut]
        try:
            parse(prefix)
        except Exception:
            continue
        return prefix
    return minified[:limit]


class NoAlphanumericObfuscator(Transformer):
    """JSFuck-style whole-script encoding into ``[]()!+``."""

    technique = Technique.NO_ALPHANUMERIC
    labels = frozenset({Technique.NO_ALPHANUMERIC})

    #: Inputs are minified first (as JSFuck users do) to bound the ~100×
    #: expansion; sources longer than this are truncated at a statement
    #: boundary before encoding — real JSFuck use targets small payloads,
    #: and the cap keeps encoded corpus files in the low hundreds of kB.
    max_input_chars = 128

    def transform(self, source: str, rng: random.Random) -> str:
        minified = SimpleMinifier().transform(source, rng)
        if len(minified) > self.max_input_chars:
            minified = _truncate_at_parse_boundary(minified, self.max_input_chars)
        encoder = JSFuckEncoder()
        return encoder.encode_program(minified)


register(NoAlphanumericObfuscator())
