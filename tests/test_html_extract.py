"""Tests for HTML script extraction (crawler substrate)."""

from repro.corpus.html_extract import extract_inline_javascript, extract_scripts


PAGE = """
<!DOCTYPE html>
<html>
<head>
  <title>Shop</title>
  <script src="https://cdn.example.com/jquery.min.js"></script>
  <script type="application/json">{"config": true}</script>
  <script>
    var inlineOne = 1;
    boot(inlineOne);
  </script>
</head>
<body>
  <p>content</p>
  <SCRIPT TYPE="text/javascript">trackPageView();</SCRIPT>
  <script type="module">import { x } from './m.js'; run(x);</script>
  <script src='/local/app.js' defer></script>
  <script type="text/template"><div>{{name}}</div></script>
  <script></script>
</body>
</html>
"""


class TestExtraction:
    def test_inline_count(self):
        result = extract_scripts(PAGE)
        assert len(result.inline) == 3  # plain, uppercase, module

    def test_external_urls(self):
        result = extract_scripts(PAGE)
        assert result.external == [
            "https://cdn.example.com/jquery.min.js",
            "/local/app.js",
        ]

    def test_non_js_types_skipped(self):
        result = extract_scripts(PAGE)
        assert "application/json" in result.skipped_types
        assert "text/template" in result.skipped_types

    def test_inline_bodies_parse(self):
        from repro.js.parser import parse

        for body in extract_inline_javascript(PAGE):
            parse(body)

    def test_script_count(self):
        result = extract_scripts(PAGE)
        assert result.script_count == 5

    def test_empty_inline_ignored(self):
        result = extract_scripts("<script>   </script>")
        assert result.inline == []

    def test_case_insensitive_tags(self):
        result = extract_scripts("<SCRIPT>a();</SCRIPT>")
        assert result.inline == ["a();"]

    def test_unclosed_script_takes_rest(self):
        result = extract_scripts("<p>x</p><script>tail();")
        assert result.inline == ["tail();"]

    def test_attributes_with_single_quotes(self):
        result = extract_scripts("<script src='x.js'></script>")
        assert result.external == ["x.js"]

    def test_script_containing_lt(self):
        body = "if (a < b) { run(); }"
        result = extract_scripts(f"<script>{body}</script>")
        assert result.inline == [body]

    def test_no_scripts(self):
        result = extract_scripts("<html><body>text</body></html>")
        assert result.script_count == 0

    def test_multiple_pages_independent(self):
        first = extract_scripts("<script>one();</script>")
        second = extract_scripts("<script>two();</script>")
        assert first.inline == ["one();"]
        assert second.inline == ["two();"]


class TestExtractUnits:
    """Provenance-carrying extraction: event handlers, external refs."""

    def test_inline_units_carry_script_index_details(self):
        from repro.corpus.html_extract import extract_units

        page = extract_units(
            "<script>one();</script><script src='x.js'></script><script>two();</script>"
        )
        inline = [unit for unit in page.units if unit.kind == "inline"]
        assert [(unit.code, unit.detail) for unit in inline] == [
            ("one();", "script[0]"),
            ("two();", "script[2]"),
        ]
        assert [(ext.url, ext.detail) for ext in page.external] == [
            ("x.js", "script[1]")
        ]

    def test_event_handlers_extracted_with_tag_provenance(self):
        from repro.corpus.html_extract import extract_units

        page = extract_units(
            "<body onload='init()'>"
            "<a href='#' onclick=\"track(1)\">go</a>"
            "<div onmouseover='hover();' data-x='notjs'>d</div>"
            "</body>"
        )
        handlers = [unit for unit in page.units if unit.kind == "event_handler"]
        assert [unit.code for unit in handlers] == ["init()", "track(1)", "hover();"]
        assert handlers[0].detail == "body@onload[0]"
        assert handlers[1].attributes == {"tag": "a", "attribute": "onclick"}

    def test_markup_inside_script_bodies_is_not_rescanned(self):
        from repro.corpus.html_extract import extract_units

        html = (
            "<script>var s = \"<div onclick='evil()'>\";</script>"
            "<p onclick='real()'>x</p>"
        )
        page = extract_units(html)
        handlers = [unit for unit in page.units if unit.kind == "event_handler"]
        assert [unit.code for unit in handlers] == ["real()"]

    def test_handlers_in_comments_are_ignored(self):
        from repro.corpus.html_extract import extract_units

        page = extract_units("<!-- <b onclick='dead()'>x</b> --><i onclick='live()'>y</i>")
        assert [unit.code for unit in page.units] == ["live()"]

    def test_empty_and_non_on_attributes_skipped(self):
        from repro.corpus.html_extract import extract_units

        page = extract_units("<div onclick='' once='x' on='y'>z</div>")
        assert page.units == []

    def test_legacy_extract_scripts_excludes_event_handlers(self):
        result = extract_scripts("<div onclick='h()'>x</div><script>s();</script>")
        assert result.inline == ["s();"]
        assert result.script_count == 1
