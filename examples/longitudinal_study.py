#!/usr/bin/env python3
"""Longitudinal study (§IV-D): transformed code 2015-05 → 2020-09.

Builds monthly Alexa-like and npm-like corpora across the paper's 65-month
window, classifies each month with level 1, and prints the Figure-6 series
plus the Figure-7/8 technique drift.

Run:  python examples/longitudinal_study.py
"""

from repro.corpus.datasets import month_label
from repro.experiments.common import ExperimentContext
from repro.experiments import fig6_7_8
from repro.experiments.runner import SCALES


def bar(rate: float, width: int = 40) -> str:
    filled = int(rate * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("Training detector (cached under .cache/ after the first run) ...")
    context = ExperimentContext.get(SCALES["tiny"], cache_dir=".cache")

    print("\nMeasuring monthly corpora ...")
    alexa = fig6_7_8.run_alexa(context, scripts_per_month=20, n_points=6)
    npm = fig6_7_8.run_npm(context, scripts_per_month=20, n_points=6)

    print("\nFigure 6 — share of transformed scripts over time")
    print("Alexa Top 2k (paper: steady rise):")
    for month in sorted(alexa["months"]):
        row = alexa["months"][month]
        print(f"  {row['label']}  {bar(row['transformed_rate'])}  {row['transformed_rate']:.0%}")
    print("npm Top 2k (paper: three phases around 7%/18%/15%):")
    for month in sorted(npm["months"]):
        row = npm["months"][month]
        print(f"  {row['label']}  {bar(row['transformed_rate'])}  {row['transformed_rate']:.0%}")

    print(f"\nAlexa trend slope: {fig6_7_8.trend_slope(alexa):+.5f} per month "
          f"(paper: positive)")

    months = sorted(alexa["months"])
    first, last = months[0], months[-1]
    print("\nFigure 7 — Alexa technique drift (first → last month):")
    for technique in ("minification_simple", "minification_advanced", "identifier_obfuscation"):
        a = alexa["months"][first]["technique_probability"][technique]
        b = alexa["months"][last]["technique_probability"][technique]
        print(f"  {technique:<26} {a:.1%} -> {b:.1%}")

    print("\nFigure 8 — npm technique mix (per sampled month):")
    for month in sorted(npm["months"]):
        probs = npm["months"][month]["technique_probability"]
        print(f"  {month_label(month)}  simple={probs['minification_simple']:.0%} "
              f"advanced={probs['minification_advanced']:.0%} "
              f"identifier={probs['identifier_obfuscation']:.0%}")


if __name__ == "__main__":
    main()
