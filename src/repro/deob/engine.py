"""Fixpoint pass scheduler, safety budgets, and the deobfuscation report.

:class:`DeobEngine` drives the pass pipeline source-to-source: parse the
current state, hand every pass a fresh tree plus the rule engine's typed
evidence, regenerate, and repeat until nothing changes (or a budget
trips).  Working source-level keeps the pass contract honest — each
iteration starts from a clean, annotation-free AST, and the emitted
normal form is by construction re-parseable.

The report measures removal the model-free way: rule-engine confidences
per technique before and after, with *removed* meaning a technique that
was evidenced at or above the triage threshold before normalization and
is not after.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.deob.base import Budget, DeobPass, PassContext, PassResult
from repro.deob.constant_fold import ConstantFoldPass
from repro.deob.dead_code import DeadCodePass
from repro.deob.jsfuck import JsfuckDecodePass
from repro.deob.rename import RenamePass
from repro.deob.string_array import StringArrayInlinePass
from repro.deob.traps import TrapRemovalPass
from repro.deob.unflatten import UnflattenPass
from repro.deob.unminify import UnminifyPass
from repro.deob.unpack import EvalUnwrapPass
from repro.js.codegen import generate
from repro.js.parser import parse
from repro.js.visitor import count_nodes
from repro.rules.engine import RuleEngine, default_engine
from repro.rules.findings import max_confidence_by_technique

#: confidence bar a technique must drop below to count as *removed*.
#: Lower than the triage threshold on purpose: every rule fires at ≥ 0.8
#: confidence when its signature is present, so 0.5 cleanly separates
#: "evidenced" from "gone" for all twelve rules.
REMOVAL_THRESHOLD = 0.5


def default_passes() -> list[DeobPass]:
    """The standard pipeline, in schedule order (payload reveals first)."""
    return [
        EvalUnwrapPass(),
        JsfuckDecodePass(),
        StringArrayInlinePass(),
        UnflattenPass(),
        ConstantFoldPass(),
        DeadCodePass(),
        TrapRemovalPass(),
        UnminifyPass(),
        RenamePass(),
    ]


@dataclass
class PassStats:
    """Aggregate activity of one pass across all iterations."""

    name: str
    applications: int = 0  #: iterations in which the pass changed the tree
    rewrites: int = 0  #: total nodes rewritten/removed/inlined

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "applications": self.applications,
            "rewrites": self.rewrites,
        }


@dataclass
class DeobReport:
    """What the engine did and what it removed."""

    iterations: int = 0
    passes: list[PassStats] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    eval_unwraps: int = 0
    techniques_before: dict[str, float] = field(default_factory=dict)
    techniques_after: dict[str, float] = field(default_factory=dict)
    techniques_removed: list[str] = field(default_factory=list)
    bailed: str | None = None  #: budget that tripped, if any
    error: str | None = None  #: fatal condition (input did not parse)
    wall_time_ms: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def total_rewrites(self) -> int:
        return sum(stats.rewrites for stats in self.passes)

    @property
    def passes_applied(self) -> list[str]:
        return [stats.name for stats in self.passes if stats.applications]

    def to_json(self) -> dict[str, Any]:
        return {
            "iterations": self.iterations,
            "passes": [stats.to_json() for stats in self.passes if stats.applications],
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "eval_unwraps": self.eval_unwraps,
            "total_rewrites": self.total_rewrites,
            "techniques_before": {
                technique: round(confidence, 4)
                for technique, confidence in sorted(self.techniques_before.items())
            },
            "techniques_after": {
                technique: round(confidence, 4)
                for technique, confidence in sorted(self.techniques_after.items())
            },
            "techniques_removed": self.techniques_removed,
            "bailed": self.bailed,
            "error": self.error,
            "wall_time_ms": round(self.wall_time_ms, 3),
            "notes": self.notes,
        }


@dataclass
class DeobResult:
    """Normalized source plus the report describing how it got there."""

    source: str
    report: DeobReport
    changed: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "changed": self.changed,
            "report": self.report.to_json(),
        }


class DeobEngine:
    """Schedules deobfuscation passes to fixpoint under safety budgets.

    ``removal_threshold`` is the confidence bar a technique must drop
    below to count as removed (defaults to the rules triage threshold).
    """

    def __init__(
        self,
        passes: list[DeobPass] | None = None,
        budget: Budget | None = None,
        rules: RuleEngine | None = None,
        removal_threshold: float = REMOVAL_THRESHOLD,
    ) -> None:
        self.passes = passes if passes is not None else default_passes()
        self.budget = budget if budget is not None else Budget()
        self.rules = rules if rules is not None else default_engine()
        self.removal_threshold = removal_threshold

    # -- public API --------------------------------------------------------------

    def run(self, source: str) -> DeobResult:
        """Normalize ``source``; never raises on malformed input."""
        started = time.perf_counter()
        report = DeobReport(passes=[PassStats(p.name) for p in self.passes])
        stats_by_name = {stats.name: stats for stats in report.passes}

        try:
            program = parse(source)
        except Exception as exc:
            report.error = f"input does not parse: {exc}"
            report.wall_time_ms = (time.perf_counter() - started) * 1000
            return DeobResult(source=source, report=report, changed=False)

        report.nodes_before = count_nodes(program)
        if report.nodes_before > self.budget.max_nodes:
            report.bailed = "node-budget"
            report.nodes_after = report.nodes_before
            report.wall_time_ms = (time.perf_counter() - started) * 1000
            return DeobResult(source=source, report=report, changed=False)

        report.techniques_before = self._confidences(source)

        current_source = source
        seen_sources = {source}
        eval_unwraps = 0
        disabled: set[str] = set()
        structural = [p for p in self.passes if not p.late]
        late = [p for p in self.passes if p.late]

        for _ in range(self.budget.max_iterations):
            if self._out_of_time(started):
                report.bailed = "time-budget"
                break
            report.iterations += 1
            ctx = PassContext(
                source=current_source,
                findings=self._findings(current_source),
                budget=self.budget,
                eval_unwraps=eval_unwraps,
            )
            changed = self._run_passes(structural, program, ctx, stats_by_name, disabled, started, report)
            if changed is None:  # time budget tripped mid-iteration
                break
            if not changed:
                changed = self._run_passes(late, program, ctx, stats_by_name, disabled, started, report)
                if changed is None:
                    break
            eval_unwraps = ctx.eval_unwraps
            report.notes.extend(ctx.notes)
            if not changed:
                break
            program = changed
            new_source = generate(program)
            if new_source == current_source or new_source in seen_sources:
                current_source = new_source
                break
            seen_sources.add(new_source)
            current_source = new_source
        else:
            report.bailed = report.bailed or "iteration-budget"

        report.eval_unwraps = eval_unwraps
        normalized = generate(program)
        report.nodes_after = count_nodes(program)
        report.techniques_after = self._confidences(normalized)
        report.techniques_removed = sorted(
            technique
            for technique, confidence in report.techniques_before.items()
            if confidence >= self.removal_threshold
            and report.techniques_after.get(technique, 0.0) < self.removal_threshold
        )
        report.wall_time_ms = (time.perf_counter() - started) * 1000
        return DeobResult(
            source=normalized, report=report, changed=normalized != source
        )

    # -- internals ---------------------------------------------------------------

    def _run_passes(self, passes, program, ctx, stats_by_name, disabled, started, report):
        """Apply one round of passes; the rewritten program or False/None."""
        changed = False
        for deob_pass in passes:
            if deob_pass.name in disabled:
                continue
            if self._out_of_time(started):
                report.bailed = "time-budget"
                return program if changed else None
            pass_started = time.perf_counter()
            try:
                result: PassResult = deob_pass.rewrite(program, ctx)
            except RecursionError:
                report.notes.append(f"{deob_pass.name}: recursion limit; disabled")
                disabled.add(deob_pass.name)
                continue
            elapsed = time.perf_counter() - pass_started
            if elapsed > self.budget.max_pass_seconds:
                disabled.add(deob_pass.name)
                report.notes.append(
                    f"{deob_pass.name}: exceeded per-pass budget "
                    f"({elapsed:.2f}s); disabled"
                )
            if result.changed:
                stats = stats_by_name[deob_pass.name]
                stats.applications += 1
                stats.rewrites += result.rewrites
                program = result.program
                changed = True
        return program if changed else False

    def _out_of_time(self, started: float) -> bool:
        return (time.perf_counter() - started) > self.budget.max_seconds

    def _findings(self, source: str):
        try:
            return self.rules.analyze_source(source, data_flow=False)
        except Exception:
            return []

    def _confidences(self, source: str) -> dict[str, float]:
        try:
            findings = self.rules.analyze_source(source, data_flow=False)
        except Exception:
            return {}
        return max_confidence_by_technique(findings)


def deobfuscate(
    source: str,
    budget: Budget | None = None,
    passes: list[DeobPass] | None = None,
) -> DeobResult:
    """One-shot convenience wrapper around :class:`DeobEngine`."""
    return DeobEngine(passes=passes, budget=budget).run(source)
