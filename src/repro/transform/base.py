"""Transformer protocol and the monitored-technique vocabulary (§II-C)."""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod


class Technique(str, enum.Enum):
    """The ten transformation techniques the paper monitors."""

    IDENTIFIER_OBFUSCATION = "identifier_obfuscation"
    STRING_OBFUSCATION = "string_obfuscation"
    GLOBAL_ARRAY = "global_array"
    NO_ALPHANUMERIC = "no_alphanumeric"
    DEAD_CODE_INJECTION = "dead_code_injection"
    CONTROL_FLOW_FLATTENING = "control_flow_flattening"
    SELF_DEFENDING = "self_defending"
    DEBUG_PROTECTION = "debug_protection"
    MINIFICATION_SIMPLE = "minification_simple"
    MINIFICATION_ADVANCED = "minification_advanced"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


TECHNIQUES: tuple[Technique, ...] = tuple(Technique)

#: Techniques whose presence classifies a file as obfuscated (vs. minified).
OBFUSCATION_TECHNIQUES = frozenset(
    {
        Technique.IDENTIFIER_OBFUSCATION,
        Technique.STRING_OBFUSCATION,
        Technique.GLOBAL_ARRAY,
        Technique.NO_ALPHANUMERIC,
        Technique.DEAD_CODE_INJECTION,
        Technique.CONTROL_FLOW_FLATTENING,
        Technique.SELF_DEFENDING,
        Technique.DEBUG_PROTECTION,
    }
)

MINIFICATION_TECHNIQUES = frozenset(
    {Technique.MINIFICATION_SIMPLE, Technique.MINIFICATION_ADVANCED}
)


def looks_minified(source: str) -> bool:
    """Heuristic: compact formatting (used to preserve it across chains)."""
    lines = source.count("\n") + 1
    return len(source) / lines > 150


class Transformer(ABC):
    """One code-transformation tool configuration.

    ``labels`` lists every monitored technique the tool applies — some tools
    always combine techniques (e.g. obfuscator.io renames identifiers
    whenever it flattens control flow), which is why a single-configuration
    sample can carry up to three ground-truth labels (§III-E1).
    """

    #: primary technique this transformer implements
    technique: Technique
    #: every label the transformation leaves in the output
    labels: frozenset[Technique]

    @abstractmethod
    def transform(self, source: str, rng: random.Random) -> str:
        """Return the transformed source for ``source``."""

    @property
    def name(self) -> str:
        return self.technique.value


_registry: dict[Technique, Transformer] = {}


def register(transformer: Transformer) -> Transformer:
    _registry[transformer.technique] = transformer
    return transformer


def registry() -> dict[Technique, Transformer]:
    """All registered transformers, keyed by primary technique."""
    _ensure_loaded()
    return dict(_registry)


def get_transformer(technique: Technique | str) -> Transformer:
    """Look up the transformer for a monitored technique."""
    _ensure_loaded()
    if isinstance(technique, str):
        technique = Technique(technique)
    return _registry[technique]


def _ensure_loaded() -> None:
    # Partial registration happens when a transformer module is imported
    # directly (e.g. the packer importing the simple minifier), so check
    # for completeness rather than mere non-emptiness.
    if len(_registry) == len(TECHNIQUES):
        return
    # Import for side effects: each module registers its transformer.
    from repro.transform import (  # noqa: F401
        control_flow_flattening,
        dead_code,
        debug_protection,
        global_array,
        identifier_rename,
        minify_advanced,
        minify_simple,
        no_alphanumeric,
        self_defending,
        string_obfuscation,
    )
