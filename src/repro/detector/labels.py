"""Label vocabularies for both detector levels (§III-C)."""

from __future__ import annotations

import numpy as np

from repro.transform.base import (
    MINIFICATION_TECHNIQUES,
    OBFUSCATION_TECHNIQUES,
    TECHNIQUES,
    Technique,
)

#: Level-1 classes: a file can be regular, minified, obfuscated — or both
#: minified and obfuscated (multi-label).
LEVEL1_LABELS: tuple[str, ...] = ("regular", "minified", "obfuscated")

#: Level-2 classes: the ten monitored techniques, in a fixed order that
#: defines the classifier-chain positions.
LEVEL2_LABELS: tuple[str, ...] = tuple(t.value for t in TECHNIQUES)


def level1_labels_for(techniques: frozenset | set) -> set[str]:
    """Ground-truth level-1 label set for a technique combination."""
    labels: set[str] = set()
    techs = {Technique(t) if isinstance(t, str) else t for t in techniques}
    if techs & MINIFICATION_TECHNIQUES:
        labels.add("minified")
    if techs & OBFUSCATION_TECHNIQUES:
        labels.add("obfuscated")
    if not labels:
        labels.add("regular")
    return labels


def level1_vector(labels: set[str]) -> np.ndarray:
    """Multi-hot vector over :data:`LEVEL1_LABELS`."""
    return np.array([1 if name in labels else 0 for name in LEVEL1_LABELS], dtype=np.int64)


def level2_vector(techniques: frozenset | set) -> np.ndarray:
    """Multi-hot vector over :data:`LEVEL2_LABELS`."""
    names = {Technique(t).value if isinstance(t, str) else t.value for t in techniques}
    return np.array([1 if name in names else 0 for name in LEVEL2_LABELS], dtype=np.int64)
