"""Tests for the corpus substrate: generator, filters, datasets, malware."""

import pytest

from repro.corpus.datasets import (
    N_MONTHS,
    alexa_top,
    longitudinal_alexa,
    longitudinal_npm,
    month_label,
    npm_top,
)
from repro.corpus.filters import (
    CONDITIONAL_TYPES,
    admit,
    passes_content_filter,
    passes_size_filter,
)
from repro.corpus.generator import ProgramGenerator, generate_corpus
from repro.corpus.malicious import SOURCE_PROFILES, MaliciousGenerator
from repro.js.parser import parse
from repro.transform.base import Technique


class TestGenerator:
    def test_deterministic(self):
        a = ProgramGenerator(seed=5).generate_program()
        b = ProgramGenerator(seed=5).generate_program()
        assert a == b

    def test_different_seeds_differ(self):
        a = ProgramGenerator(seed=1).generate_program()
        b = ProgramGenerator(seed=2).generate_program()
        assert a != b

    def test_all_parse(self, regular_corpus):
        for source in regular_corpus:
            parse(source)

    def test_minimum_size_respected(self):
        corpus = generate_corpus(5, seed=9, min_bytes=1000)
        assert all(len(source) >= 1000 for source in corpus)

    def test_has_functions_and_statements(self, regular_corpus):
        from repro.js.visitor import find_all

        with_functions = sum(
            1 for source in regular_corpus if find_all(parse(source), "FunctionDeclaration")
        )
        assert with_functions >= len(regular_corpus) // 2

    def test_contains_comments(self, regular_corpus):
        assert any("//" in source or "/*" in source for source in regular_corpus)

    def test_human_like_identifiers(self, regular_corpus):
        from repro.js.visitor import find_all

        names = set()
        for source in regular_corpus[:5]:
            names |= {n.name for n in find_all(parse(source), "Identifier")}
        long_names = [n for n in names if len(n) >= 4]
        assert len(long_names) > len(names) / 2

    def test_passes_admission_filters(self, regular_corpus):
        assert all(admit(source) for source in regular_corpus)


class TestFilters:
    def test_size_bounds(self):
        assert not passes_size_filter("x" * 100)
        assert passes_size_filter("x" * 600)
        assert not passes_size_filter("x" * (3 * 1024 * 1024))

    def test_content_filter_rejects_json_like(self):
        program = parse('var data = { "a": 1, "b": [2, 3] };')
        assert not passes_content_filter(program)

    def test_content_filter_accepts_call(self):
        assert passes_content_filter(parse("f();"))

    def test_content_filter_accepts_conditional(self):
        assert passes_content_filter(parse("var x = a ? 1 : 2;"))

    def test_content_filter_accepts_function(self):
        assert passes_content_filter(parse("var f = () => 1;"))

    def test_paper_footnote_types(self):
        assert "ForOfStatement" in CONDITIONAL_TYPES
        assert "TryStatement" in CONDITIONAL_TYPES

    def test_admit_rejects_invalid(self):
        assert not admit("var x = ;" + " " * 600)


class TestSnapshotDatasets:
    def test_alexa_rates(self):
        scripts = alexa_top(150, seed=1)
        rate = sum(1 for s in scripts if s.transformed) / len(scripts)
        assert 0.5 < rate < 0.9  # paper: 68.6%

    def test_npm_rates(self):
        scripts = npm_top(300, seed=1)
        rate = sum(1 for s in scripts if s.transformed) / len(scripts)
        assert 0.02 < rate < 0.25  # paper: 8.7%

    def test_alexa_minification_dominates(self):
        scripts = alexa_top(200, seed=2)
        transformed = [s for s in scripts if s.transformed]
        minified = [
            s
            for s in transformed
            if s.labels & {Technique.MINIFICATION_SIMPLE, Technique.MINIFICATION_ADVANCED}
        ]
        assert len(minified) / len(transformed) > 0.8

    def test_labels_only_on_transformed(self):
        for script in alexa_top(60, seed=3):
            if not script.transformed:
                assert script.labels == frozenset()
            else:
                assert script.labels

    def test_all_parse(self):
        for script in alexa_top(40, seed=4) + npm_top(40, seed=4):
            parse(script.source)

    def test_rank_groups_assigned(self):
        scripts = alexa_top(100, seed=5)
        assert {s.rank_group for s in scripts} == set(range(10))

    def test_containers_cluster_transformation(self):
        scripts = npm_top(400, seed=6)
        by_container = {}
        for script in scripts:
            by_container.setdefault(script.container, []).append(script.transformed)
        mixed = sum(1 for flags in by_container.values() if 0 < sum(flags) < len(flags))
        fully_regular = sum(1 for flags in by_container.values() if not any(flags))
        assert fully_regular > mixed  # most packages are fully regular


class TestLongitudinal:
    def test_month_labels(self):
        assert month_label(0) == "2015-05"
        assert month_label(N_MONTHS - 1) == "2020-09"

    def test_alexa_rising_trend(self):
        early = longitudinal_alexa(60, seed=1, months=[0])
        late = longitudinal_alexa(60, seed=1, months=[N_MONTHS - 1])
        early_rate = sum(s.transformed for s in early) / len(early)
        late_rate = sum(s.transformed for s in late) / len(late)
        assert late_rate > early_rate

    def test_npm_three_phases(self):
        phase1 = longitudinal_npm(120, seed=2, months=[5])
        phase2 = longitudinal_npm(120, seed=2, months=[30])
        rate1 = sum(s.transformed for s in phase1) / len(phase1)
        rate2 = sum(s.transformed for s in phase2) / len(phase2)
        assert rate2 > rate1  # 7.4% -> 17.95%

    def test_months_recorded(self):
        scripts = longitudinal_alexa(5, seed=3, months=[0, 10])
        assert {s.month for s in scripts} == {0, 10}


class TestMalicious:
    @pytest.mark.parametrize("origin", ["dnc", "hynek", "bsi"])
    def test_all_parse(self, origin):
        for sample in MaliciousGenerator(origin, seed=11).generate(15):
            parse(sample.source)

    def test_unknown_origin_raises(self):
        with pytest.raises(ValueError):
            MaliciousGenerator("unknown")

    def test_transformed_rates_ordered(self):
        rates = {}
        for origin in ("hynek", "bsi"):
            samples = MaliciousGenerator(origin, seed=13).generate(120)
            rates[origin] = sum(s.transformed for s in samples) / len(samples)
        assert rates["hynek"] > rates["bsi"]  # 73% vs 29%

    def test_waves_share_structure(self):
        samples = MaliciousGenerator("hynek", seed=17).generate(60)
        waves = {}
        for sample in samples:
            if sample.wave >= 0:
                waves.setdefault(sample.wave, []).append(sample)
        multi = [group for group in waves.values() if len(group) > 1]
        assert multi, "expected at least one wave"
        group = multi[0]
        # Same wave: SHA-unique sources but identical syntactic skeleton.
        assert len({s.source for s in group}) == len(group)
        from repro.features.ngrams import ast_ngram_vector
        import numpy as np

        vectors = [ast_ngram_vector(parse(s.source)) for s in group[:3]]
        for vector in vectors[1:]:
            assert np.allclose(vector, vectors[0])

    def test_identifier_obfuscation_most_common(self):
        samples = MaliciousGenerator("hynek", seed=19).generate(150)
        counts = {}
        for sample in samples:
            for technique in sample.techniques:
                counts[technique] = counts.get(technique, 0) + 1
        assert counts
        top = max(counts, key=counts.get)
        assert top is Technique.IDENTIFIER_OBFUSCATION

    def test_profiles_cover_paper_sources(self):
        assert set(SOURCE_PROFILES) == {"dnc", "hynek", "bsi"}

    def test_plain_samples_look_plainer(self):
        samples = MaliciousGenerator("bsi", seed=23).generate(80)
        plain = [s for s in samples if not s.transformed]
        assert plain
        # Untransformed loaders avoid the staged "ev"+"al" construction.
        assert all('"ev" + "al"' not in s.source for s in plain)
