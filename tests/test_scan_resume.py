"""Crash/resume and incremental re-scan acceptance (ISSUE 9 criteria).

Two kill modes are exercised against a real ``python -m repro scan``
subprocess:

- a *deterministic* hard exit via the ``REPRO_SCAN_CRASH_AFTER_UNITS``
  hook (``os._exit`` after N persisted units — no signal cooperation,
  exactly like a SIGKILL at a known point), and
- a genuine ``SIGKILL`` delivered while the scan is running.

In both cases the resumed run must skip every unit the killed run
persisted, and the merged report must be byte-identical to a run that
was never interrupted.

The 5k-file test asserts the headline incremental criterion: a second
scan over an unchanged ≥5k-file corpus answers ≥99% of units from the
content-addressed store.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.scan import ResultStore, ScanConfig, ScanCoordinator, merge_scan, write_report

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _write_corpus(root: Path, n: int) -> None:
    root.mkdir(parents=True, exist_ok=True)
    for index in range(n):
        # minified-shaped one-liners: decided at the cheap text triage
        # stage, unique content per index
        (root / f"u{index:05d}.js").write_text(
            f"var v{index}=7;function g{index}(x){{return x?x+{index}:0}};" * 24
        )


def _scan_cli(corpus: Path, store: Path, *, env_extra: dict | None = None,
              stats_out: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_SCAN_CRASH_AFTER_UNITS", None)
    if env_extra:
        env.update(env_extra)
    argv = [
        sys.executable, "-m", "repro", "scan", str(corpus),
        "--store", str(store),
        "--rules-only", "--no-fingerprint",
        "--shard-size", "16", "--checkpoint-every", "4",
    ]
    if stats_out is not None:
        argv += ["--stats-out", str(stats_out)]
    return subprocess.run(argv, env=env, capture_output=True, text=True, timeout=300)


def _merged_bytes(store: Path, out: Path) -> bytes:
    report = merge_scan(ResultStore(store))
    return write_report(report, out).read_bytes()


class TestCrashResume:
    def test_deterministic_crash_then_resume_is_byte_identical(self, tmp_path):
        corpus = tmp_path / "corpus"
        _write_corpus(corpus, 80)
        store = tmp_path / "store"

        crashed = _scan_cli(
            corpus, store, env_extra={"REPRO_SCAN_CRASH_AFTER_UNITS": "25"}
        )
        assert crashed.returncode == 17, crashed.stderr
        persisted = len(list(ResultStore(store).iter_hashes()))
        assert persisted == 25  # exactly the units that landed before the kill

        stats_out = tmp_path / "stats.json"
        resumed = _scan_cli(corpus, store, stats_out=stats_out)
        assert resumed.returncode == 0, resumed.stderr
        stats = json.loads(stats_out.read_text())
        assert stats["skipped_store"] == 25  # completed hashes are skipped
        assert stats["scanned"] == 80 - 25
        assert stats["errors"] == 0

        # uninterrupted control run into a fresh store
        control_store = tmp_path / "control"
        control = _scan_cli(corpus, control_store)
        assert control.returncode == 0, control.stderr

        resumed_report = _merged_bytes(store, tmp_path / "resumed.json")
        control_report = _merged_bytes(control_store, tmp_path / "control.json")
        assert resumed_report == control_report

    def test_sigkill_mid_scan_then_resume_is_byte_identical(self, tmp_path):
        corpus = tmp_path / "corpus"
        _write_corpus(corpus, 400)
        store = tmp_path / "store"

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_SCAN_CRASH_AFTER_UNITS", None)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "scan", str(corpus),
                "--store", str(store),
                "--rules-only", "--no-fingerprint",
                "--shard-size", "8", "--checkpoint-every", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # wait for real progress, then kill hard
        deadline = time.monotonic() + 120
        objects = store / "objects"
        while time.monotonic() < deadline and process.poll() is None:
            if objects.is_dir() and sum(1 for _ in objects.rglob("*.json")) >= 40:
                break
            time.sleep(0.02)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=60)

        persisted = len(list(ResultStore(store).iter_hashes()))
        assert persisted > 0  # the killed run made durable progress

        stats_out = tmp_path / "stats.json"
        resumed = _scan_cli(corpus, store, stats_out=stats_out)
        assert resumed.returncode == 0, resumed.stderr
        stats = json.loads(stats_out.read_text())
        assert stats["skipped_store"] >= persisted
        assert stats["skipped_store"] + stats["scanned"] == 400

        control_store = tmp_path / "control"
        control = _scan_cli(corpus, control_store)
        assert control.returncode == 0, control.stderr
        assert _merged_bytes(store, tmp_path / "resumed.json") == _merged_bytes(
            control_store, tmp_path / "control.json"
        )


class TestIncrementalAtScale:
    @pytest.fixture(scope="class")
    def big_corpus(self, tmp_path_factory) -> Path:
        corpus = tmp_path_factory.mktemp("scan5k") / "corpus"
        _write_corpus(corpus, 5000)
        return corpus

    def test_second_scan_skips_99_percent_via_store(self, big_corpus, tmp_path):
        store = str(tmp_path / "store")
        config = dict(
            roots=[str(big_corpus)],
            store=store,
            shard_size=512,
            fingerprint=False,
        )
        cold = ScanCoordinator(ScanConfig(**config)).run()
        assert cold.unique == 5000
        assert cold.scanned == 5000
        assert cold.errors == 0

        warm = ScanCoordinator(ScanConfig(**config)).run()
        assert warm.unique == 5000
        assert warm.skip_rate >= 0.99  # the headline acceptance criterion
        assert warm.scanned <= 50
        # and the merged report is identical before and after the re-scan
        first = write_report(
            merge_scan(ResultStore(store)), tmp_path / "r1.json"
        ).read_bytes()
        second = write_report(
            merge_scan(ResultStore(store)), tmp_path / "r2.json"
        ).read_bytes()
        assert first == second
