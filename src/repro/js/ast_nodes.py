"""ESTree-compatible AST nodes backed by per-type ``__slots__`` classes.

Every node type in :mod:`repro.js.estree` gets a generated slotted class:
schema fields plus the analysis annotations (``scope``, flow edges, ...)
live in fixed slots, so nodes carry no per-instance ``__dict__`` on the
hot path and child discovery walks a per-type field table instead of a
dict.  ``Node(type, **fields)`` still works — ``Node.__new__`` dispatches
to the generated class — so builders, transforms, and tests construct
nodes exactly as before, and the generated classes can also be called
directly (``Identifier(name="x", start=0, end=1)``) on hot paths.

Semantics preserved from the attribute-bag representation:

- a field is either *set* or *absent*; reading an absent field raises
  ``AttributeError`` and ``node.get`` returns the default,
- ``to_dict``/``clone`` drop ``parent``/``scope``/flow/data annotations
  but keep ``binding`` and ``decl_init_kind`` when set,
- ``iter_fields``/``iter_child_nodes`` yield children in construction
  (schema) order, skipping analysis annotations.

Unknown node types fall back to :class:`_GenericNode`, which keeps the
old dict-bag behaviour, so ``from_dict`` round-trips foreign ESTree JSON.
"""

from __future__ import annotations

from keyword import iskeyword as _iskeyword
from typing import Any, Iterator

from repro.js.estree import ANALYSIS_FIELDS, CHILD_FIELDS, NODE_FIELDS, TYPE_IDS


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


#: Sentinel distinguishing "field absent" from "field set to None".
_MISSING = _Missing()

_ANALYSIS_FIELDS = frozenset(ANALYSIS_FIELDS)

# Fields to_dict/clone drop (note: binding and decl_init_kind are kept,
# matching the historical attribute-bag behaviour the frozen reference
# in tests/reference_parser.py pins down).
_SERIALIZE_EXCLUDED = ("parent", "scope", "flow_out", "flow_in", "data_out", "data_in")
_SERIALIZE_EXCLUDED_SET = frozenset(_SERIALIZE_EXCLUDED)
_SERIALIZE_KEPT_ANALYSIS = ("binding", "decl_init_kind")


class Node:
    """One AST node; ``Node(type, **fields)`` dispatches to the slotted
    per-type class.

    >>> Node("Identifier", name="x").type
    'Identifier'
    """

    __slots__ = ()

    type: str = ""
    type_id: int = -1
    #: Ordered schema fields, or ``None`` for the generic dict-bag node.
    _fields: tuple[str, ...] | None = None
    #: Child-bearing subset of ``_fields`` (``None`` for generic nodes).
    _child_fields: tuple[str, ...] | None = None
    #: ``_child_fields`` reversed, precomputed for reverse-push tree walks.
    _child_fields_rev: tuple[str, ...] | None = None

    def __new__(cls, type: str | None = None, **fields: Any) -> "Node":
        if cls is not Node:
            # Direct construction of a generated class: no dispatch needed.
            return object.__new__(cls)
        node_cls = _CLASSES.get(type)
        if node_cls is None:
            node_cls = _GenericNode
        return object.__new__(node_cls)

    def __repr__(self) -> str:
        parts = []
        for key, value in _set_fields(self):
            if key == "type" or isinstance(value, Node):
                continue
            if isinstance(value, list) and value and isinstance(value[0], Node):
                continue
            if key in ("start", "end", "parent"):
                continue
            parts.append(f"{key}={value!r}")
        inner = ", ".join(parts)
        return f"{self.type}({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return to_dict(self) == to_dict(other)

    def __hash__(self) -> int:
        return id(self)

    def get(self, field: str, default: Any = None) -> Any:
        value = getattr(self, field, _MISSING)
        if value is _MISSING:
            return default
        return value

    def fields(self) -> dict[str, Any]:
        """All set attributes of this node as a dict (a snapshot)."""
        return dict(_set_fields(self))

    def __getstate__(self) -> dict[str, Any]:
        return dict(_set_fields(self))

    def __setstate__(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            if key != "type":
                setattr(self, key, value)

    def __reduce__(self):
        return (_unpickle_node, (self.type,), self.__getstate__())


def _unpickle_node(type: str) -> Node:
    cls = _CLASSES.get(type, _GenericNode)
    node = object.__new__(cls)
    if cls is _GenericNode:
        node.type = type
    return node


class _GenericNode(Node):
    """Fallback dict-bag node for types outside the ESTree schema."""

    __slots__ = ("__dict__",)

    def __init__(self, type: str | None = None, **fields: Any) -> None:
        self.type = type
        for key, value in fields.items():
            setattr(self, key, value)


def _build_node_class(type_name: str) -> type[Node]:
    schema_fields = NODE_FIELDS[type_name]
    child_fields = CHILD_FIELDS[type_name]
    # Schema fields first (construction order), then the analysis slots,
    # then a lazy overflow dict for foreign fields set after the fact.
    slots = schema_fields + tuple(
        f for f in ANALYSIS_FIELDS if f not in schema_fields
    )
    class_name = type_name
    # Fields whose name is a Python keyword (``async``) cannot appear in a
    # def signature; they route through **_extra and plain setattr.
    named = [f for f in schema_fields if not _iskeyword(f)]
    params = ", ".join(f"{f}=_MISSING" for f in named)
    assigns = "\n".join(
        f"    if {f} is not _MISSING: self.{f} = {f}" for f in named
    )
    source = (
        f"def __init__(self, _type=None, *, {params}, **_extra):\n"
        f"{assigns}\n"
        f"    if _extra:\n"
        f"        for _key in _extra:\n"
        f"            setattr(self, _key, _extra[_key])\n"
    )
    namespace: dict[str, Any] = {"_MISSING": _MISSING}
    exec(source, namespace)  # noqa: S102 - static, schema-derived code
    cls = type(
        class_name,
        (Node,),
        {
            "__slots__": slots + ("__dict__",),
            "__module__": __name__,
            "__qualname__": class_name,
            "__init__": namespace["__init__"],
            "type": type_name,
            "type_id": TYPE_IDS[type_name],
            "_fields": schema_fields,
            "_child_fields": child_fields,
            "_child_fields_rev": tuple(reversed(child_fields)),
        },
    )
    return cls


#: type name -> generated slotted class.
_CLASSES: dict[str, type[Node]] = {}
for _type_name in NODE_FIELDS:
    _cls = _build_node_class(_type_name)
    _CLASSES[_type_name] = _cls
    globals()[_type_name] = _cls

NODE_CLASSES = _CLASSES


def fast_constructor(type_name: str, *fields: str):
    """Positional constructor for one node type and an exact field set.

    Generates ``factory(f1, f2, ...)`` that allocates the slotted class and
    assigns exactly the given fields — one Python frame, no kwargs dict, no
    per-field sentinel checks.  Hot parser sites bind one factory per
    (type, field-set) pair; set-vs-unset semantics are preserved because
    the field set is fixed at generation time.
    """
    cls = _CLASSES[type_name]
    params: list[str] = []
    assigns: list[str] = []
    for field in fields:
        if _iskeyword(field):
            param = field + "_"
            assigns.append(f"    _setattr(self, {field!r}, {param})\n")
        else:
            param = field
            assigns.append(f"    self.{field} = {param}\n")
        params.append(param)
    source = (
        f"def factory({', '.join(params)}):\n"
        f"    self = _new(_cls)\n"
        f"{''.join(assigns)}"
        f"    return self\n"
    )
    namespace: dict[str, Any] = {
        "_new": object.__new__,
        "_cls": cls,
        "_setattr": setattr,
    }
    exec(source, namespace)  # noqa: S102 - static, schema-derived code
    factory = namespace["factory"]
    factory.__name__ = f"make_{type_name}"
    factory.__qualname__ = factory.__name__
    return factory


def _set_fields(node: Node) -> Iterator[tuple[str, Any]]:
    """Yield ``(name, value)`` for every set attribute, bag-order style:
    ``type`` first, then schema fields, then analysis annotations, then
    any overflow fields."""
    fields = node._fields
    if fields is None:
        yield from node.__dict__.items()
        return
    yield "type", node.type
    for key in fields:
        value = getattr(node, key, _MISSING)
        if value is not _MISSING:
            yield key, value
    for key in ANALYSIS_FIELDS:
        if key in node._fields:
            continue
        value = getattr(node, key, _MISSING)
        if value is not _MISSING:
            yield key, value
    overflow = node.__dict__
    if overflow:
        yield from overflow.items()


def iter_fields(node: Node) -> Iterator[tuple[str, Any]]:
    """Yield ``(field_name, value)`` for fields that hold child nodes.

    Dispatches on the value type, not the field name: ``Property.value``
    holds a child node while ``Literal.value`` holds a plain scalar, so a
    name-based skip list would hide real children.  Only analysis
    annotations (``parent``, ``scope``, flow edges) are excluded.
    """
    fields = node._fields
    if fields is None:
        for key, value in node.__dict__.items():
            if key in _ANALYSIS_FIELDS:
                continue
            if isinstance(value, (Node, list)):
                yield key, value
        return
    for key in fields:
        value = getattr(node, key, _MISSING)
        if isinstance(value, (Node, list)):
            yield key, value
    overflow = node.__dict__
    if overflow:
        for key, value in overflow.items():
            if key in _ANALYSIS_FIELDS:
                continue
            if isinstance(value, (Node, list)):
                yield key, value


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield direct child nodes in source order.

    Hot path: walks the per-type child-field table, so scalar-only nodes
    (``Identifier``, ``Literal``) return immediately and no dict is ever
    scanned.
    """
    child_fields = node._child_fields
    if child_fields is None:
        for key, value in node.__dict__.items():
            if isinstance(value, Node):
                if key != "parent":
                    yield value
            elif value.__class__ is list:
                for item in value:
                    if isinstance(item, Node):
                        yield item
        return
    for key in child_fields:
        value = getattr(node, key, None)
        if value is None:
            continue
        if value.__class__ is list:
            for item in value:
                if isinstance(item, Node):
                    yield item
        elif isinstance(value, Node):
            yield value


def to_dict(node: Node | list | Any) -> Any:
    """Convert a node tree to plain dicts (JSON-serializable, ESTree shape)."""
    if isinstance(node, Node):
        result: dict[str, Any] = {}
        fields = node._fields
        if fields is None:
            for key, value in node.__dict__.items():
                if key in _SERIALIZE_EXCLUDED_SET:
                    continue
                result[key] = to_dict(value)
            return result
        result["type"] = node.type
        for key in fields:
            value = getattr(node, key, _MISSING)
            if value is not _MISSING:
                result[key] = to_dict(value)
        for key in _SERIALIZE_KEPT_ANALYSIS:
            value = getattr(node, key, _MISSING)
            if value is not _MISSING:
                result[key] = to_dict(value)
        overflow = node.__dict__
        if overflow:
            for key, value in overflow.items():
                if key in _SERIALIZE_EXCLUDED_SET:
                    continue
                result[key] = to_dict(value)
        return result
    if isinstance(node, list):
        return [to_dict(item) for item in node]
    return node


def from_dict(data: Any) -> Any:
    """Inverse of :func:`to_dict` for dicts that carry a ``type`` key."""
    if isinstance(data, dict) and "type" in data:
        fields = {key: from_dict(value) for key, value in data.items() if key != "type"}
        return Node(data["type"], **fields)
    if isinstance(data, list):
        return [from_dict(item) for item in data]
    return data


def clone(node: Any) -> Any:
    """Deep-copy an AST subtree (drops parent/flow annotations)."""
    if isinstance(node, Node):
        fields: dict[str, Any] = {}
        schema_fields = node._fields
        if schema_fields is None:
            for key, value in node.__dict__.items():
                if key == "type" or key in _SERIALIZE_EXCLUDED_SET:
                    continue
                fields[key] = clone(value)
            return Node(node.type, **fields)
        for key in schema_fields:
            value = getattr(node, key, _MISSING)
            if value is not _MISSING:
                fields[key] = clone(value)
        for key in _SERIALIZE_KEPT_ANALYSIS:
            value = getattr(node, key, _MISSING)
            if value is not _MISSING:
                fields[key] = value
        overflow = node.__dict__
        if overflow:
            for key, value in overflow.items():
                if key in _SERIALIZE_EXCLUDED_SET:
                    continue
                fields[key] = clone(value)
        return Node(node.type, **fields)
    if isinstance(node, list):
        return [clone(item) for item in node]
    return node
