"""Tests for all ten transformation tools plus the packer and pipeline."""

import pytest

from repro.js.parser import parse
from repro.js.visitor import find_all, walk
from repro.transform import (
    TECHNIQUES,
    Technique,
    TransformationPipeline,
    get_transformer,
    registry,
    transform_with,
)
from repro.transform.base import looks_minified
from repro.transform.packer import DeanEdwardsPacker, pack
from repro.transform.renaming import (
    expand_shorthand_properties,
    hex_name_generator,
    rename_hex,
    rename_short,
    short_name_generator,
)


@pytest.fixture()
def source(sample_source):
    return sample_source


class TestRegistry:
    def test_all_ten_registered(self):
        assert set(registry()) == set(TECHNIQUES)

    def test_lookup_by_string(self):
        assert get_transformer("minification_simple").technique is Technique.MINIFICATION_SIMPLE

    def test_labels_include_primary(self):
        for technique, transformer in registry().items():
            assert technique in transformer.labels

    def test_at_most_three_labels(self):
        # §III-E1: single-configuration samples carry up to three labels.
        for transformer in registry().values():
            assert 1 <= len(transformer.labels) <= 3


@pytest.mark.parametrize("technique", [t.value for t in TECHNIQUES])
def test_output_reparses(technique, source, rng):
    out = get_transformer(technique).transform(source, rng)
    parse(out)  # must be valid JavaScript
    assert out != source


class TestRenaming:
    def test_short_name_generator_sequence(self):
        gen = short_name_generator()
        first = [next(gen) for _ in range(54)]
        assert first[0] == "a"
        assert first[25] == "z"
        assert first[26] == "A"
        assert len(first[53]) == 2

    def test_short_names_skip_keywords(self):
        gen = short_name_generator()
        names = [next(gen) for _ in range(60 * 63)]
        assert "do" not in names
        assert "if" not in names

    def test_hex_names_unique(self, rng):
        gen = hex_name_generator(rng)
        names = [next(gen) for _ in range(200)]
        assert len(set(names)) == 200
        assert all(name.startswith("_0x") for name in names)

    def test_rename_short_keeps_globals(self, source, rng):
        program = parse(source)
        rename_short(program)
        names = {n.name for n in find_all(program, "Identifier")}
        assert "console" in names  # global untouched
        assert "JSON" in names
        assert "fetchData" not in names  # local renamed

    def test_rename_preserves_property_names(self, rng):
        program = parse("var obj = { value: 1 }; use(obj.value);")
        rename_short(program)
        members = find_all(program, "MemberExpression")
        assert members[0].property.name == "value"

    def test_rename_shorthand_expansion(self, rng):
        program = parse("var alpha = 1; f({ alpha });")
        rename_hex(program, rng)
        props = find_all(program, "Property")
        assert props[0].key.name == "alpha"  # key kept
        assert props[0].value.name.startswith("_0x")  # value renamed

    def test_expand_shorthand_pattern(self):
        program = parse("var { m } = obj; use(m);")
        expand_shorthand_properties(program)
        props = find_all(program, "Property")
        assert props[0].key is not props[0].value

    def test_rename_consistency(self, rng):
        program = parse("function f(a) { return a + a; } f(1);")
        rename_hex(program, rng)
        fn = find_all(program, "FunctionDeclaration")[0]
        param = fn.params[0].name
        body_ids = {n.name for n in find_all(fn.body, "Identifier")}
        assert body_ids == {param}


class TestMinifiers:
    def test_simple_removes_whitespace(self, source, rng):
        out = get_transformer("minification_simple").transform(source, rng)
        assert "\n" not in out
        assert len(out) < len(source) * 0.8

    def test_simple_removes_comments(self, rng):
        out = get_transformer("minification_simple").transform(
            "// top comment\nvar alpha = 1; /* x */ use(alpha);", rng
        )
        assert "comment" not in out

    def test_advanced_constant_folding(self, rng):
        out = get_transformer("minification_advanced").transform(
            "var x = 2 + 3 * 4; use(x);", rng
        )
        assert "14" in out

    def test_advanced_string_concat_folding(self, rng):
        out = get_transformer("minification_advanced").transform(
            'var s = "ab" + "cd"; use(s);', rng
        )
        assert "abcd" in out

    def test_advanced_boolean_shortening(self, rng):
        out = get_transformer("minification_advanced").transform(
            "var flag = true; use(flag, false);", rng
        )
        assert "!0" in out and "!1" in out

    def test_advanced_if_to_ternary(self, rng):
        out = get_transformer("minification_advanced").transform(
            "if (cond) { left(); } else { right(); }", rng
        )
        assert "?" in out and ":" in out

    def test_advanced_if_to_logical_and(self, rng):
        out = get_transformer("minification_advanced").transform(
            "if (cond) { effect(); }", rng
        )
        assert "&&" in out

    def test_advanced_dead_branch_elimination(self, rng):
        out = get_transformer("minification_advanced").transform(
            "if (false) { neverRuns(); } else { always(); }", rng
        )
        assert "neverRuns" not in out

    def test_advanced_unreachable_removal(self, rng):
        out = get_transformer("minification_advanced").transform(
            "function f() { return 1; unreachable(); } f();", rng
        )
        assert "unreachable" not in out

    def test_advanced_sequence_merging(self, rng):
        out = get_transformer("minification_advanced").transform(
            "a(); b(); c();", rng
        )
        assert "a(),b(),c()" in out

    def test_advanced_undefined_to_void(self, rng):
        out = get_transformer("minification_advanced").transform(
            "var u = undefined; use(u);", rng
        )
        assert "void 0" in out

    def test_advanced_keeps_property_undefined(self, rng):
        out = get_transformer("minification_advanced").transform(
            "use(obj.undefined);", rng
        )
        assert ".undefined" in out

    def test_semantics_preserving_structure(self, source, rng):
        out = get_transformer("minification_simple").transform(source, rng)
        original_calls = len(find_all(parse(source), "CallExpression"))
        minified_calls = len(find_all(parse(out), "CallExpression"))
        assert original_calls == minified_calls


class TestObfuscators:
    def test_identifier_obfuscation_hex_names(self, source, rng):
        out = get_transformer("identifier_obfuscation").transform(source, rng)
        names = {n.name for n in find_all(parse(out), "Identifier")}
        assert any(name.startswith("_0x") for name in names)

    def test_identifier_obfuscation_preserves_formatting(self, source, rng):
        out = get_transformer("identifier_obfuscation").transform(source, rng)
        assert "\n" in out  # pretty output for regular input

    def test_string_obfuscation_hides_literals(self, rng):
        src = 'var message = "hello world obfuscation"; use(message);'
        out = get_transformer("string_obfuscation").transform(src, rng)
        assert "hello world obfuscation" not in out

    def test_string_obfuscation_leaves_property_keys(self, rng):
        src = 'var o = { secretKey: 1 }; use(o.secretKey, "hidden-value");'
        out = get_transformer("string_obfuscation").transform(src, rng)
        assert "secretKey" in out

    def test_global_array_extracts_strings(self, rng):
        from repro.transform.global_array import GlobalArrayObfuscator

        src = 'var a = "alpha"; var b = "beta"; use(a, b, "alpha");'
        out = GlobalArrayObfuscator(encoding="none", rotate=False).transform(src, rng)
        program = parse(out)
        arrays = find_all(program, "ArrayExpression")
        assert arrays and len(arrays[0].elements) == 2  # deduplicated
        assert "alpha" in out  # inside the array
        statement = program.body[0]
        assert statement.type == "VariableDeclaration"

    def test_global_array_accessor_function(self, rng):
        src = 'var greeting = "hi"; use(greeting, "there");'
        out = get_transformer("global_array").transform(src, rng)
        program = parse(out)
        assert any(
            node.type == "FunctionDeclaration" for node in program.body
        )

    def test_dead_code_injects_statements(self, source, rng):
        out = get_transformer("dead_code_injection").transform(source, rng)
        original = len(parse(source).body)
        assert len(parse(out).body) > original

    def test_dead_code_opaque_branches(self, rng):
        out = get_transformer("dead_code_injection").transform(
            "var keep = 1; use(keep); done();", rng
        )
        program = parse(out)
        ifs = find_all(program, "IfStatement")
        junk = [n for n in walk(program) if n.type == "VariableDeclaration"]
        assert ifs or len(junk) > 1

    def test_cff_creates_dispatcher(self, source, rng):
        out = get_transformer("control_flow_flattening").transform(source, rng)
        program = parse(out)
        whiles = find_all(program, "WhileStatement")
        switches = find_all(program, "SwitchStatement")
        assert whiles and switches

    def test_cff_order_string(self, source, rng):
        out = get_transformer("control_flow_flattening").transform(source, rng)
        assert ".split(" in out.replace(" ", "") or '"|"' in out

    def test_cff_preserves_statement_count(self, rng):
        src = "a(); b(); c(); d();"
        out = get_transformer("control_flow_flattening").transform(src, rng)
        program = parse(out)
        calls = [n for n in walk(program) if n.type == "CallExpression"]
        # 4 original + split() call
        assert len([c for c in calls if c.callee.type == "Identifier"]) == 4

    def test_cff_skips_small_bodies(self, rng):
        src = "tiny();"
        out = get_transformer("control_flow_flattening").transform(src, rng)
        assert not find_all(parse(out), "SwitchStatement")

    def test_cff_skips_free_break(self, rng):
        src = "for (;;) { if (x) break; a(); b(); }"
        out = get_transformer("control_flow_flattening").transform(src, rng)
        parse(out)  # still valid

    def test_self_defending_guard(self, source, rng):
        out = get_transformer("self_defending").transform(source, rng)
        assert "constructor" in out
        assert "\n" not in out  # always compact

    def test_debug_protection_injects_debugger(self, source, rng):
        out = get_transformer("debug_protection").transform(source, rng)
        assert "debugger" in out
        assert "setInterval" in out

    def test_jsfuck_six_characters_only(self, rng):
        out = get_transformer("no_alphanumeric").transform(
            "var x = 1; f(x);", rng
        )
        assert set(out) <= set("[]()!+")

    def test_jsfuck_reparses(self, rng):
        out = get_transformer("no_alphanumeric").transform("f(1);", rng)
        parse(out)


class TestJSFuckEncoder:
    def test_number_encoding(self):
        from repro.transform.no_alphanumeric import _number

        assert _number(0) == "+[]"
        assert _number(1) == "+!+[]"
        assert _number(3) == "!+[]+!+[]+!+[]"
        assert "(" in _number(10)

    def test_char_map_core_letters(self):
        from repro.transform.no_alphanumeric import JSFuckEncoder

        encoder = JSFuckEncoder()
        for char in "abcdefilnorstuv (){}[]":
            expression = encoder.char(char)
            assert set(expression) <= set("[]()!+"), char
            parse(expression + ";")

    def test_spell_memoised(self):
        from repro.transform.no_alphanumeric import JSFuckEncoder

        encoder = JSFuckEncoder()
        first = encoder.spell("constructor")
        second = encoder.spell("constructor")
        assert first is second

    def test_exotic_char_via_unescape(self):
        from repro.transform.no_alphanumeric import JSFuckEncoder

        encoder = JSFuckEncoder()
        expression = encoder.char(";")
        assert set(expression) <= set("[]()!+")
        parse(expression + ";")


class TestPacker:
    def test_packed_shape(self, source, rng):
        out = pack(source, rng)
        assert out.startswith("eval(function(p,a,c,k,e,d)")
        parse(out)

    def test_packed_replaces_repeated_words(self, rng):
        # Property names survive minification, so the packer dictionary
        # picks them up when repeated.
        src = "obj.computeValue(); obj.computeValue(); obj.computeValue();"
        out = pack(src, rng)
        # The word appears exactly once: in the dictionary, not the payload.
        assert out.count("computeValue") == 1
        assert ".split('|')" in out

    def test_packer_class_interface(self, source, rng):
        packer = DeanEdwardsPacker()
        assert packer.name == "daft_logic_packer"
        parse(packer.transform(source, rng))

    def test_base62_encoding(self):
        from repro.transform.packer import _encode_base62

        assert _encode_base62(0) == "0"
        assert _encode_base62(61) == "Z"
        assert _encode_base62(62) == "10"


class TestPipeline:
    def test_single_technique(self, source, rng):
        out, labels = transform_with(source, ["minification_simple"], rng)
        assert labels == frozenset({Technique.MINIFICATION_SIMPLE})
        parse(out)

    def test_combined_labels_union(self, source, rng):
        out, labels = transform_with(
            source, ["minification_simple", "string_obfuscation"], rng
        )
        assert Technique.MINIFICATION_SIMPLE in labels
        assert Technique.STRING_OBFUSCATION in labels

    def test_implied_labels(self, source, rng):
        _out, labels = transform_with(source, ["global_array"], rng)
        assert Technique.IDENTIFIER_OBFUSCATION in labels

    def test_jsfuck_terminal_resets_labels(self, source, rng):
        _out, labels = transform_with(
            source, ["minification_simple", "no_alphanumeric"], rng
        )
        assert labels == frozenset({Technique.NO_ALPHANUMERIC})

    def test_canonical_order(self):
        pipeline = TransformationPipeline(
            ["identifier_obfuscation", "minification_advanced"]
        )
        assert pipeline.techniques[0] is Technique.MINIFICATION_ADVANCED

    def test_unknown_technique_raises(self):
        with pytest.raises(ValueError):
            TransformationPipeline(["not_a_technique"])

    def test_compactness_preserved_across_chain(self, source, rng):
        out, _labels = transform_with(
            source, ["minification_simple", "identifier_obfuscation"], rng
        )
        assert looks_minified(out)

    def test_three_technique_chain_parses(self, source, rng):
        out, labels = transform_with(
            source,
            ["minification_advanced", "string_obfuscation", "debug_protection"],
            rng,
        )
        parse(out)
        assert len(labels) >= 4


class TestLooksMinified:
    def test_pretty_code(self, source):
        assert not looks_minified(source)

    def test_compact_code(self, source, rng):
        out = get_transformer("minification_simple").transform(source, rng)
        assert looks_minified(out)
