"""Obfuscated field reference — an *unmonitored* technique (§II-A, §V-A).

The paper lists this data-obfuscation technique (bracket notation instead
of dot notation so property names can be computed [34]) but does **not**
include it among the ten monitored classes.  Its role in the evaluation is
the §V-A claim: *"our level 1 detector can recognize samples as
transformed, even if they use techniques that we do not monitor."*

This transformer is therefore intentionally NOT registered in the
technique registry; the test suite uses it to exercise that claim.
"""

from __future__ import annotations

import random

from repro.js.ast_nodes import Node
from repro.js.builder import string
from repro.js.codegen import generate
from repro.js.parser import parse
from repro.js.visitor import walk
from repro.transform.base import looks_minified


def obfuscate_field_references(program: Node, rng: random.Random, probability: float = 1.0) -> int:
    """Rewrite ``obj.prop`` into ``obj["prop"]`` in place; returns count."""
    rewritten = 0
    for node in walk(program):
        if node.type != "MemberExpression" or node.get("computed"):
            continue
        prop = node.property
        if prop.type != "Identifier":
            continue
        if rng.random() > probability:
            continue
        node.property = string(prop.name)
        node.computed = True
        rewritten += 1
    return rewritten


class FieldReferenceObfuscator:
    """Dot→bracket rewriting; unmonitored by the level-2 detector."""

    name = "obfuscated_field_reference"

    def transform(self, source: str, rng: random.Random) -> str:
        program = parse(source)
        obfuscate_field_references(program, rng)
        return generate(program, compact=looks_minified(source))
