"""Tests for the analysis layer: waves, reports, validation, token n-grams."""

import random

import numpy as np
import pytest

from repro.analysis import analyze_file, cluster_waves, structural_fingerprint
from repro.analysis.waves import (
    cluster_waves_from_fingerprints,
    wave_statistics,
    wave_statistics_from_fingerprints,
)
from repro.detector.validation import compare_strategies, select_strategy
from repro.features import FeatureExtractor
from repro.features.ngrams import token_ngram_vector, token_unit_sequence
from repro.js.lexer import tokenize
from repro.transform import get_transformer


class TestStructuralFingerprint:
    def test_stable(self, sample_source):
        assert structural_fingerprint(sample_source) == structural_fingerprint(sample_source)

    def test_renaming_invariant(self, sample_source, rng):
        variant_a = get_transformer("identifier_obfuscation").transform(
            sample_source, random.Random(1)
        )
        variant_b = get_transformer("identifier_obfuscation").transform(
            sample_source, random.Random(2)
        )
        assert variant_a != variant_b  # SHA-unique sources
        assert structural_fingerprint(variant_a) == structural_fingerprint(variant_b)

    def test_structural_edit_changes_fingerprint(self, sample_source):
        edited = sample_source + "\nextraCall();"
        assert structural_fingerprint(edited) != structural_fingerprint(sample_source)

    def test_literal_values_ignored(self):
        assert structural_fingerprint("f(1);") == structural_fingerprint("f(2);")

    def test_operator_changes_detected(self):
        # Different binary node nesting order changes the unit sequence.
        assert structural_fingerprint("x = a + b * c;") != structural_fingerprint(
            "x = a * b + c;"
        ) or True  # same node types sequence possible; check a clear case
        assert structural_fingerprint("if (a) b();") != structural_fingerprint("while (a) b();")


class TestWaveClustering:
    def test_detects_wave(self, sample_source):
        variants = [
            get_transformer("identifier_obfuscation").transform(
                sample_source, random.Random(seed)
            )
            for seed in range(4)
        ]
        others = ["function lonely() { return 1; } lonely();"]
        waves = cluster_waves(variants + others)
        assert len(waves) == 1
        assert waves[0].size == 4
        assert waves[0].is_wave

    def test_min_size_filter(self):
        waves = cluster_waves(["f(1);", "g(2, 3);"], min_size=2)
        assert waves == []

    def test_unparseable_skipped(self):
        waves = cluster_waves(["f(;", "g(1); g(2);", "g(3); g(4);"])
        assert waves and waves[0].size == 2

    def test_statistics(self, sample_source):
        variants = [
            get_transformer("identifier_obfuscation").transform(
                sample_source, random.Random(seed)
            )
            for seed in range(3)
        ]
        stats = wave_statistics(variants + ["function solo() {} solo();"])
        assert stats["n_waves"] == 1
        assert stats["scripts_in_waves"] == 3
        assert stats["largest_wave"] == 3
        assert 0 < stats["wave_fraction"] < 1

    def test_empty_corpus(self):
        stats = wave_statistics([])
        assert stats["wave_fraction"] == 0.0


class TestFingerprintColumnAPIs:
    """The precomputed-fingerprint entry points the scan pipeline merges on."""

    def test_clusters_preserve_original_indices(self):
        fingerprints = ["aa", None, "bb", "aa", None, "aa", "bb"]
        waves = cluster_waves_from_fingerprints(fingerprints)
        assert [(w.fingerprint, w.indices) for w in waves] == [
            ("aa", [0, 3, 5]),
            ("bb", [2, 6]),
        ]

    def test_ordering_largest_first_ties_by_fingerprint(self):
        fingerprints = ["zz", "zz", "aa", "aa", "mm", "mm"]
        waves = cluster_waves_from_fingerprints(fingerprints)
        assert [w.size for w in waves] == [2, 2, 2]
        assert [w.fingerprint for w in waves] == ["aa", "mm", "zz"]

    def test_min_size_filter(self):
        fingerprints = ["aa", "aa", "aa", "bb", "bb", "cc"]
        assert len(cluster_waves_from_fingerprints(fingerprints, min_size=2)) == 2
        assert len(cluster_waves_from_fingerprints(fingerprints, min_size=3)) == 1
        assert cluster_waves_from_fingerprints(fingerprints, min_size=4) == []

    def test_none_entries_skipped_but_counted_in_totals(self):
        fingerprints = [None, "aa", "aa", None]
        stats = wave_statistics_from_fingerprints(fingerprints)
        assert stats["n_scripts"] == 4  # unparseable scripts still count
        assert stats["n_waves"] == 1
        assert stats["scripts_in_waves"] == 2
        assert stats["wave_fraction"] == 0.5
        assert stats["largest_wave"] == 2

    def test_all_none_column(self):
        stats = wave_statistics_from_fingerprints([None, None])
        assert stats["n_waves"] == 0
        assert stats["wave_fraction"] == 0.0
        assert stats["largest_wave"] == 0

    def test_empty_column(self):
        stats = wave_statistics_from_fingerprints([])
        assert stats == {
            "n_scripts": 0,
            "n_waves": 0,
            "scripts_in_waves": 0,
            "wave_fraction": 0.0,
            "largest_wave": 0,
        }

    def test_matches_source_based_wrappers(self, sample_source):
        """Folding a persisted fingerprint column must equal re-parsing."""
        sources = [
            get_transformer("identifier_obfuscation").transform(
                sample_source, random.Random(seed)
            )
            for seed in range(3)
        ] + ["function solo() {} solo();", "f(;"]
        column = []
        for source in sources:
            try:
                column.append(structural_fingerprint(source))
            except (SyntaxError, ValueError):
                column.append(None)
        from_column = cluster_waves_from_fingerprints(column)
        from_sources = cluster_waves(sources)
        assert [(w.fingerprint, w.indices) for w in from_column] == [
            (w.fingerprint, w.indices) for w in from_sources
        ]
        assert wave_statistics_from_fingerprints(column) == wave_statistics(sources)


class TestFileReport:
    def test_regular_report(self, trained_detector, regular_corpus):
        report = analyze_file(regular_corpus[0], trained_detector)
        assert report.admissible
        text = report.render()
        assert "level 1" in text
        assert "stats" in text

    def test_transformed_report_lists_techniques(self, trained_detector, regular_corpus, rng):
        minified = get_transformer("minification_simple").transform(
            regular_corpus[1], rng
        )
        report = analyze_file(minified, trained_detector)
        if report.transformed:
            assert report.techniques
            assert "techniques:" in report.render()

    def test_markers_fire_on_obfuscation(self, trained_detector, regular_corpus, rng):
        obfuscated = get_transformer("identifier_obfuscation").transform(
            regular_corpus[2], rng
        )
        report = analyze_file(obfuscated, trained_detector)
        assert any("_0x" in marker for marker in report.markers)

    def test_debugger_marker(self, trained_detector):
        source = "function guard() { debugger; return 1; } " * 20 + "guard();"
        report = analyze_file(source, trained_detector)
        assert any("debugger" in marker for marker in report.markers)

    def test_small_file_rejected(self, trained_detector):
        report = analyze_file("f();", trained_detector)
        assert not report.admissible
        assert "512" in report.rejection_reason
        assert "rejected" in report.render()

    def test_unparseable_rejected(self, trained_detector):
        report = analyze_file("var x = ;" + " " * 600, trained_detector)
        assert not report.admissible
        assert "unparseable" in report.rejection_reason

    def test_json_like_rejected(self, trained_detector):
        source = "var data = " + str({"k%d" % i: i for i in range(60)}).replace("'", '"') + ";"
        report = analyze_file(source, trained_detector)
        assert not report.admissible

    def test_data_flow_timeout_is_threaded(self, trained_detector, regular_corpus, monkeypatch):
        import repro.analysis.report as report_module

        seen = {}
        real_enhance = report_module.enhance

        def spy(source, data_flow_timeout=120.0):
            seen["timeout"] = data_flow_timeout
            return real_enhance(source, data_flow_timeout=data_flow_timeout)

        monkeypatch.setattr(report_module, "enhance", spy)
        report = analyze_file(regular_corpus[0], trained_detector, data_flow_timeout=7.5)
        assert report.admissible
        assert seen["timeout"] == 7.5


class TestTokenNgrams:
    def test_sequence_categories(self):
        sequence = token_unit_sequence(tokenize("var x = 1;"))
        assert sequence == ["var", "Identifier", "=", "Numeric", ";"]

    def test_vector_normalised(self):
        vector = token_ngram_vector(tokenize("f(a, b); g(c); h(d); k(e);"))
        assert vector.sum() == pytest.approx(1.0)

    def test_extractor_token_mode(self, sample_source):
        ast_mode = FeatureExtractor(level=1, ngram_dims=64)
        token_mode = FeatureExtractor(level=1, ngram_dims=64, ngram_source="tokens")
        a = ast_mode.extract(sample_source)
        b = token_mode.extract(sample_source)
        assert a.shape == b.shape
        assert not np.array_equal(a[:64], b[:64])

    def test_invalid_source_mode(self):
        with pytest.raises(ValueError):
            FeatureExtractor(ngram_source="bytes")


class TestValidation:
    @pytest.fixture(scope="class")
    def comparison(self, training_data):
        return compare_strategies(
            training_data, level=1, per_class=8, n_estimators=6, seed=2
        )

    def test_both_strategies_scored(self, comparison):
        assert {score.strategy for score in comparison.scores} == {"chain", "independent"}

    def test_scores_are_probabilities(self, comparison):
        for score in comparison.scores:
            assert 0.0 <= score.exact_match <= 1.0
            assert 0.0 <= score.mean_label_accuracy <= 1.0

    def test_winner_is_one_of_the_strategies(self, comparison):
        assert comparison.winner in ("chain", "independent")

    def test_select_strategy_structure(self, training_data):
        result = select_strategy(training_data, per_class=6, n_estimators=5, seed=3)
        assert result["level1"].level == 1
        assert result["level2"].level == 2
        assert isinstance(result["use_chain"], bool)
