"""Rule protocol and registry for the static signature engine.

Each rule is a stateless matcher over a :class:`~repro.rules.context.RuleContext`
that emits zero or more :class:`~repro.rules.findings.Finding` objects.
Rules declare the cheapest analysis layer they need (``STAGE_TEXT`` <
``STAGE_TOKENS`` < ``STAGE_AST``) so the triage path can stop lifting the
file the moment a verdict is possible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.rules.context import RuleContext
from repro.rules.findings import (
    DecoderEvidence,
    DispatcherEvidence,
    Finding,
    Location,
    StringArrayEvidence,
)

STAGE_TEXT = "text"  #: raw source only — no lexing
STAGE_TOKENS = "tokens"  #: token stream — no parsing
STAGE_AST = "ast"  #: enhanced AST (+ scope, CF, and DF when available)

_STAGE_ORDER = {STAGE_TEXT: 0, STAGE_TOKENS: 1, STAGE_AST: 2}


class Rule(ABC):
    """One signature: a named, explainable matcher for a technique."""

    rule_id: str
    name: str
    technique: str
    stage: str = STAGE_AST
    confidence: float = 0.8
    severity: str = "medium"

    @abstractmethod
    def evaluate(self, ctx: RuleContext) -> list[Finding]:
        """Findings for one file (empty list when the signature is absent)."""

    def finding(
        self,
        message: str,
        locations: list[Location] | None = None,
        evidence: dict | None = None,
        confidence: float | None = None,
        dispatcher: DispatcherEvidence | None = None,
        string_array: StringArrayEvidence | None = None,
        decoder: DecoderEvidence | None = None,
    ) -> Finding:
        """Build a finding stamped with this rule's identity."""
        return Finding(
            rule_id=self.rule_id,
            name=self.name,
            technique=self.technique,
            severity=self.severity,
            confidence=self.confidence if confidence is None else confidence,
            message=message,
            locations=locations or [],
            evidence=evidence or {},
            dispatcher=dispatcher,
            string_array=string_array,
            decoder=decoder,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.rule_id} {self.name} → {self.technique}>"


def stage_order(stage: str) -> int:
    """Numeric rank of a stage (text < tokens < ast)."""
    return _STAGE_ORDER[stage]
