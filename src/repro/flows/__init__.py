"""AST enhancement with control and data flows (JSTAP-style, per §III-A)."""

from repro.flows.cfg import CONTROL_FLOW_TYPES, build_control_flow
from repro.flows.dfg import build_data_flow
from repro.flows.graph import EnhancedAST, enhance

__all__ = [
    "CONTROL_FLOW_TYPES",
    "EnhancedAST",
    "build_control_flow",
    "build_data_flow",
    "enhance",
]
