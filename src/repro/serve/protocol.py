"""Minimal HTTP/1.1 over asyncio streams (no ``http.server``).

The service speaks just enough HTTP for a JSON API: request-line +
headers + ``Content-Length`` bodies, keep-alive connections, and hard
caps on every dimension an untrusted client controls (request-line
length, header block size, body size).  Violations raise
:class:`ProtocolError`, which carries the HTTP status to answer with.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Caps on client-controlled input (bytes).
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY = 16 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A client error that maps onto one HTTP response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on anything else)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, "bad_json", f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "bad_json", "request body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Request | None:
    """Parse one request from the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed or oversized input and
    lets ``asyncio.IncompleteReadError`` (mid-request disconnect) surface
    to the connection handler.
    """
    line = await reader.readline()
    if not line:
        return None  # client closed between requests
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError(400, "request_line_too_long", "request line exceeds 8 KiB")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(400, "bad_request_line", f"malformed request line: {parts!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ProtocolError(400, "bad_http_version", f"unsupported version {version}")
    path = target.split("?", 1)[0]

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if not line:
            raise ProtocolError(400, "truncated_headers", "connection closed mid-headers")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(400, "headers_too_large", "header block exceeds 32 KiB")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "bad_header", f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked_unsupported", "chunked bodies are not supported")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(400, "bad_content_length", f"invalid Content-Length {length_header!r}")
        if length < 0:
            raise ProtocolError(400, "bad_content_length", "negative Content-Length")
        if length > max_body:
            # Answer 413 without reading the payload; the connection is
            # closed afterwards so the unread body never confuses parsing.
            raise ProtocolError(413, "body_too_large", f"body of {length} bytes exceeds limit of {max_body}")
        if length:
            body = await reader.readexactly(length)
    return Request(method=method, path=path, version=version, headers=headers, body=body)


def render_response(
    status: int,
    payload: dict | None = None,
    *,
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize a JSON response (always ``Content-Length``-framed)."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def error_payload(code: str, message: str) -> dict:
    """The uniform JSON error envelope."""
    return {"error": {"code": code, "message": message}}
