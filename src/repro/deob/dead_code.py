"""Opaque-predicate and dead-branch elimination (inverts ``dead_code``).

Two legs:

- ``if`` statements whose test is statically decidable (literal, or a
  comparison of two literals — the opaque ``"a1b2c" === "d3e4f"`` shape)
  collapse to the live branch or disappear,
- declarations that are never referenced anywhere, carry an
  obfuscator-shaped name (``_0x…`` hex), and whose initializer is
  side-effect-free are dropped (the injector's junk variables and junk
  helper functions).

The name gate keeps the pass from stripping a real API surface out of
benign code — top-level functions may be entry points for code we cannot
see.
"""

from __future__ import annotations

import re

from repro.deob.base import DeobPass, PassContext, PassResult, is_pure_expression
from repro.js.ast_nodes import Node, clone
from repro.js.scope import analyze_scopes
from repro.js.visitor import NodeTransformer, walk

_HEX_NAME_RE = re.compile(r"^_0x[0-9a-fA-F]+$")

_COMPARISONS = {
    "===": lambda a, b: a is b or a == b,
    "!==": lambda a, b: not (a is b or a == b),
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def static_truth(test: Node) -> bool | None:
    """The compile-time truth value of a test expression, or ``None``."""
    if test.type == "Literal" and test.get("regex") is None:
        return bool(test.value)
    if test.type == "UnaryExpression" and test.operator == "!" and test.get("prefix"):
        inner = static_truth(test.argument)
        return None if inner is None else not inner
    if test.type == "BinaryExpression" and test.operator in _COMPARISONS:
        left, right = test.left, test.right
        if (
            left.type == "Literal"
            and right.type == "Literal"
            and left.get("regex") is None
            and right.get("regex") is None
        ):
            return bool(_COMPARISONS[test.operator](left.value, right.value))
    return None


class _BranchFolder(NodeTransformer):
    def __init__(self) -> None:
        self.rewrites = 0

    def visit_IfStatement(self, node: Node) -> Node | list | object | None:
        truth = static_truth(node.test)
        if truth is None:
            return None
        self.rewrites += 1
        if truth:
            return node.consequent
        if node.get("alternate") is not None:
            return node.alternate
        return NodeTransformer.REMOVE

    def visit_ConditionalExpression(self, node: Node) -> Node | None:
        truth = static_truth(node.test)
        if truth is None:
            return None
        self.rewrites += 1
        return node.consequent if truth else node.alternate


def _unused_junk_names(program: Node) -> set[str]:
    """Never-referenced ``_0x…`` bindings with effect-free initializers."""
    scope = analyze_scopes(clone(program))  # scope analysis annotates; keep it off the input
    junk: set[str] = set()
    for binding in scope.iter_all_bindings():
        if binding.kind == "global" or not _HEX_NAME_RE.match(binding.name):
            continue
        if binding.references or binding.assignments:
            continue
        declared_pure = True
        for declaration in binding.declarations:
            # The declaration node is the Identifier; purity is judged at
            # removal time against the declarator/function found by name.
            declared_pure = declared_pure and declaration.type == "Identifier"
        if declared_pure:
            junk.add(binding.name)
    return junk


class _JunkDropper(NodeTransformer):
    def __init__(self, junk: set[str]):
        self.junk = junk
        self.removed = 0

    def visit_FunctionDeclaration(self, node: Node) -> object | None:
        identifier = node.get("id")
        if identifier is not None and identifier.name in self.junk:
            self.removed += 1
            return NodeTransformer.REMOVE
        return None

    def visit_VariableDeclaration(self, node: Node) -> object | None:
        kept = [
            declarator
            for declarator in node.declarations
            if not (
                declarator.id.type == "Identifier"
                and declarator.id.name in self.junk
                # init-less declarators stay: a `for (var x of …)` left has
                # no init, and removing it would orphan the loop header.
                and declarator.get("init") is not None
                and is_pure_expression(declarator.init)
            )
        ]
        if len(kept) == len(node.declarations):
            return None
        self.removed += len(node.declarations) - len(kept)
        if not kept:
            return NodeTransformer.REMOVE
        node.declarations = kept
        return None


class DeadCodePass(DeobPass):
    name = "dead-code"
    techniques = ("dead_code_injection",)

    def rewrite(self, program: Node, ctx: PassContext) -> PassResult:
        has_branch = any(
            node.type in ("IfStatement", "ConditionalExpression")
            and static_truth(node.test) is not None
            for node in walk(program)
        )
        junk = _unused_junk_names(program)
        if not has_branch and not junk:
            return PassResult(program)

        work = clone(program)
        rewrites = 0
        if has_branch:
            folder = _BranchFolder()
            work = folder.transform(work)
            rewrites += folder.rewrites
        if junk:
            dropper = _JunkDropper(junk)
            work = dropper.transform(work)
            rewrites += dropper.removed
        if rewrites == 0:
            return PassResult(program)
        return PassResult(work, rewrites)
