"""End-to-end tests for the online detection service.

Every test talks to a real server bound to an ephemeral port on
127.0.0.1 through real sockets (``ServeClient`` wraps ``http.client``).
Determinism for the concurrency tests comes from a *gated* engine whose
``classify`` blocks on a ``threading.Event``: while the gate is shut the
single inference thread is busy, so follow-up requests pile into the
bounded queue exactly as they would under production load.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.detector.batch import BatchInferenceEngine
from repro.serve import (
    MetricsRegistry,
    ModelRegistry,
    ServeAPIError,
    ServeClient,
    ServeConfig,
    ThreadedServer,
)

VALID = "var total = 0; function add(a, b) { return a + b; } total = add(1, 2);"
VALID2 = "function greet(name) { return 'hi ' + name; } console.log(greet('x'));"
BROKEN = "function ((( not javascript"


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


class GatedEngine(BatchInferenceEngine):
    """Engine whose classify() blocks until the test opens the gate."""

    def __init__(self, detector, gate: threading.Event, **kwargs) -> None:
        super().__init__(detector, **kwargs)
        self.gate = gate

    def classify(self, sources, k=4, threshold=0.10, deob=False):
        assert self.gate.wait(timeout=30), "test gate never opened"
        return super().classify(sources, k=k, threshold=threshold, deob=deob)


@pytest.fixture()
def server(trained_detector):
    registry = ModelRegistry(detector=trained_detector)
    with ThreadedServer(registry, ServeConfig(port=0, max_wait_ms=30)) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def gated_server(trained_detector, gate, **config_kwargs):
    registry = ModelRegistry(
        detector=trained_detector,
        engine_factory=lambda det: GatedEngine(det, gate),
    )
    return ThreadedServer(registry, ServeConfig(port=0, **config_kwargs))


class TestLifecycle:
    def test_startup_healthz_model_shutdown(self, trained_detector):
        registry = ModelRegistry(detector=trained_detector)
        srv = ThreadedServer(registry, ServeConfig(port=0)).start()
        try:
            with ServeClient(port=srv.port) as c:
                health = c.healthz()
                assert health["status"] == "ok"
                assert health["model_version"] == 1
                model = c.model()
                assert model["source"] == "<in-memory>"
                assert model["level1_features"] == (
                    trained_detector.level1.extractor.n_features
                )
        finally:
            srv.stop()
        assert not srv._thread.is_alive()
        # the socket is really gone after drain
        with pytest.raises(ConnectionError):
            ServeClient(port=srv.port, timeout=2).healthz()

    def test_registry_rejects_bad_artifact(self, tmp_path):
        from repro.detector.pipeline import ModelFormatError

        path = tmp_path / "bogus.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(ModelFormatError):
            ModelRegistry(path=str(path))


class TestClassify:
    def test_single_and_faulty_scripts(self, client):
        results = client.classify([VALID, BROKEN])
        assert results[0]["ok"] is True
        assert results[0]["model_version"] == 1
        assert isinstance(results[0]["level1"], list)
        assert results[1]["ok"] is False
        assert results[1]["error"]["kind"] == "parse"
        assert "message" in results[1]["error"]

    def test_deob_flag_returns_normalized_source(self, client):
        import random

        from repro.corpus.generator import generate_corpus
        from repro.transform.base import Technique, get_transformer

        source = generate_corpus(1, seed=7, min_bytes=1200)[0]
        obfuscated = get_transformer(Technique.CONTROL_FLOW_FLATTENING).transform(
            source, random.Random(5)
        )
        plain, deobbed = client.classify([obfuscated, obfuscated]), client.classify(
            [obfuscated], deob=True
        )
        assert "deob" not in plain[0]
        result = deobbed[0]
        assert result["ok"] is True
        block = result["deob"]
        assert block["changed"] is True
        assert "control_flow_flattening" in block["report"]["techniques_removed"]
        assert block["source"] != obfuscated
        metrics = client.metrics()
        assert metrics["counters"]["deob_files_total"] >= 1
        assert metrics["counters"]["deob_removals_total"] >= 1
        assert "deob_s" in metrics["histograms"]

    def test_deob_flag_must_be_boolean(self, client):
        status, payload = client.request(
            "POST", "/classify", {"scripts": [VALID], "deob": "yes"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_field"

    def test_concurrent_clients_are_microbatched(self, trained_detector):
        gate = threading.Event()
        srv = gated_server(trained_detector, gate, max_wait_ms=50, max_batch=16)
        srv.start()
        try:
            sources = [f"var v{i} = {i}; console.log(v{i} + {i});" for i in range(6)]
            results: list = [None] * len(sources)

            def hit(index: int) -> None:
                with ServeClient(port=srv.port) as c:
                    results[index] = c.classify(sources[index])[0]

            # Plug the inference thread with one request, pile up six more
            # concurrently, then open the gate: they must flush together.
            with ServeClient(port=srv.port) as warm:
                warm_thread = threading.Thread(target=lambda: warm.classify(VALID))
                warm_thread.start()
                metrics = srv.registry.metrics
                wait_until(lambda: metrics.gauge("inference_busy") == 1)
                threads = [
                    threading.Thread(target=hit, args=(i,)) for i in range(len(sources))
                ]
                for thread in threads:
                    thread.start()
                wait_until(lambda: metrics.gauge("queue_depth") >= len(sources))
                gate.set()
                warm_thread.join(30)
                for thread in threads:
                    thread.join(30)

            assert all(r is not None and r["ok"] for r in results)
            with ServeClient(port=srv.port) as c:
                hist = c.metrics()["histograms"]["batch_size"]
            assert hist["max"] >= len(sources)  # concurrent requests shared a batch
        finally:
            gate.set()
            srv.stop()

    def test_request_timeout_returns_503(self, trained_detector):
        gate = threading.Event()
        srv = gated_server(trained_detector, gate, request_timeout=0.3)
        srv.start()
        try:
            with ServeClient(port=srv.port) as c:
                status, body = c.request("POST", "/classify", {"script": VALID})
            assert status == 503
            assert body["error"]["code"] == "timeout"
        finally:
            gate.set()
            srv.stop()


class TestBackpressure:
    def test_queue_overflow_answers_429(self, trained_detector):
        gate = threading.Event()
        srv = gated_server(trained_detector, gate, max_queue=2, max_batch=1)
        srv.start()
        try:
            metrics = srv.registry.metrics
            blocked: list = []

            def blocking_hit() -> None:
                with ServeClient(port=srv.port) as c:
                    blocked.append(c.classify(VALID)[0])

            # One request occupies the (gated) inference thread ...
            first = threading.Thread(target=blocking_hit)
            first.start()
            wait_until(lambda: metrics.gauge("inference_busy") == 1)
            # ... two more fill the bounded queue ...
            fillers = [threading.Thread(target=blocking_hit) for _ in range(2)]
            for thread in fillers:
                thread.start()
            wait_until(lambda: metrics.gauge("queue_depth") >= 2)
            # ... so the next one must be rejected with 429, not crash.
            with ServeClient(port=srv.port) as c:
                status, body = c.request("POST", "/classify", {"script": VALID})
                assert status == 429
                assert body["error"]["code"] == "queue_full"
                with pytest.raises(ServeAPIError) as excinfo:
                    c.classify(VALID)
                assert excinfo.value.status == 429
            assert metrics.counter("queue_rejections_total") >= 2
            gate.set()
            first.join(30)
            for thread in fillers:
                thread.join(30)
            # queued requests were served once capacity freed up
            assert len(blocked) == 3 and all(r["ok"] for r in blocked)
        finally:
            gate.set()
            srv.stop()


class TestHotReload:
    def test_reload_under_load_drains_old_model(self, trained_detector, tmp_path):
        artifact = tmp_path / "detector.pkl"
        trained_detector.save(artifact)
        gate = threading.Event()
        registry = ModelRegistry(
            path=str(artifact),
            engine_factory=lambda det: GatedEngine(det, gate),
        )
        srv = ThreadedServer(registry, ServeConfig(port=0)).start()
        try:
            in_flight: list = []

            def hit() -> None:
                with ServeClient(port=srv.port) as c:
                    in_flight.append(c.classify(VALID)[0])

            # An in-flight batch pins model v1 ...
            worker = threading.Thread(target=hit)
            worker.start()
            wait_until(lambda: registry.metrics.gauge("inference_busy") == 1)
            assert registry.current.refs == 1

            # ... reload swaps to v2 while v1 is still running.
            with ServeClient(port=srv.port) as c:
                info = c.reload()
                assert info["new"]["version"] == 2
                assert info["old"] == {"version": 1, "draining_batches": 1}
                assert c.model()["version"] == 2

                gate.set()
                worker.join(30)
                # the in-flight request finished on the model it started with
                assert in_flight[0]["ok"] and in_flight[0]["model_version"] == 1
                # new requests ride the new model
                assert c.classify(VALID2)[0]["model_version"] == 2
                assert registry.metrics.counter("models_drained_total") == 1
        finally:
            gate.set()
            srv.stop()

    def test_reload_bad_artifact_keeps_serving(self, server, tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"garbage")
        with ServeClient(port=server.port) as c:
            status, body = c.request("POST", "/admin/reload", {"path": str(bad)})
            assert status == 409
            assert body["error"]["code"] == "model_format"
            # current model is untouched and still answering
            assert c.model()["version"] == 1
            assert c.classify(VALID)[0]["ok"]

    def test_reload_without_path_for_in_memory_model(self, client):
        status, body = client.request("POST", "/admin/reload", {})
        assert status == 409
        assert "no artifact path" in body["error"]["message"]


class TestMalformedInput:
    def test_invalid_json_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        connection.request(
            "POST", "/classify", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        assert response.status == 400
        assert b"bad_json" in response.read()
        connection.close()

    def test_missing_and_malformed_fields(self, client):
        for payload, code in [
            ({}, "missing_field"),
            ({"scripts": []}, "bad_field"),
            ({"scripts": "not-a-list"}, "bad_field"),
            ({"scripts": [1, 2]}, "bad_field"),
        ]:
            status, body = client.request("POST", "/classify", payload)
            assert status == 400
            assert body["error"]["code"] == code
        # service still healthy afterwards
        assert client.classify(VALID)[0]["ok"]

    def test_oversized_body_is_413(self, trained_detector):
        registry = ModelRegistry(detector=trained_detector)
        config = ServeConfig(port=0, max_body_bytes=10_000)
        with ThreadedServer(registry, config) as srv:
            with ServeClient(port=srv.port) as c:
                status, body = c.request(
                    "POST", "/classify", {"script": "x" * 20_000}
                )
                assert status == 413
                assert body["error"]["code"] == "body_too_large"

    def test_too_many_scripts_is_413(self, trained_detector):
        registry = ModelRegistry(detector=trained_detector)
        config = ServeConfig(port=0, max_scripts_per_request=3)
        with ThreadedServer(registry, config) as srv:
            with ServeClient(port=srv.port) as c:
                status, body = c.request(
                    "POST", "/classify", {"scripts": ["var a;"] * 4}
                )
                assert status == 413
                assert body["error"]["code"] == "too_many_scripts"

    def test_unknown_route_and_wrong_method(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/classify")[0] == 405
        assert client.request("POST", "/metrics")[0] == 405

    def test_garbage_request_line(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"COMPLETE GARBAGE\r\n\r\n")
            answer = sock.recv(4096)
        assert answer.startswith(b"HTTP/1.1 400")


class TestMetrics:
    def test_counters_and_histograms_populate(self, client):
        client.classify([VALID, BROKEN, VALID])  # VALID twice -> a cache hit
        snapshot = client.metrics()
        counters = snapshot["counters"]
        assert counters["scripts_total"] >= 3
        assert counters["script_errors_total"] >= 1
        assert counters["cache_hits_total"] >= 1
        assert counters["batches_total"] >= 1
        assert counters["responses_200"] >= 1
        for name in ("batch_size", "batch_wall_s", "extract_s", "predict_s", "request_latency_s"):
            assert snapshot["histograms"][name]["count"] >= 1, name
        for percentile in ("p50", "p90", "p99"):
            assert snapshot["histograms"]["request_latency_s"][percentile] >= 0.0
        assert snapshot["gauges"]["model_version"] == 1
        assert snapshot["uptime_s"] >= 0.0

    def test_engine_observer_feeds_registry_metrics(self, trained_detector):
        metrics = MetricsRegistry()
        registry = ModelRegistry(detector=trained_detector, metrics=metrics)
        registry.current.engine.classify([VALID, BROKEN])
        assert metrics.counter("batches_total") == 1
        assert metrics.counter("scripts_total") == 2
        assert metrics.counter("script_errors_total") == 1
        stats = metrics.snapshot()["histograms"]
        assert stats["extract_s"]["count"] == 1
        assert stats["predict_s"]["count"] == 1
