"""Benchmark: Figure 1 — Top-k curves on mixed-technique samples."""

from repro.experiments import accuracy, fig1


def test_fig1_topk_curves(benchmark, context):
    ts2 = accuracy.run_test_set_2(context)

    def run():
        return (
            fig1.run_topk_curves(ts2["proba"], ts2["Y"]),
            fig1.run_thresholded_curves(ts2["proba"], ts2["Y"]),
            fig1.run_detectable_techniques(ts2["proba"], ts2["Y"]),
        )

    fig1a, fig1b, fig1c = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig1.report(fig1a, fig1b, fig1c))

    # Fig 1a: wrong labels grow with k; missing labels shrink with k.
    wrongs = [row["avg_wrong"] for row in fig1a["rows"]]
    missings = [row["avg_missing"] for row in fig1a["rows"]]
    assert wrongs[-1] >= wrongs[0]
    assert missings[-1] <= missings[0]
    # Fig 1a: ground truths have at most ~4 labels, so accuracy collapses
    # for large k ("artificial fast decline", §III-E2).
    assert fig1a["rows"][-1]["accuracy"] <= fig1a["rows"][0]["accuracy"]

    # Fig 1b: with the 10% threshold, wrong labels stay low (paper: <0.32
    # average at the operating point, small-scale band here).
    k4 = next(row for row in fig1b["rows"] if row["k"] == 4)
    assert k4["avg_wrong"] <= 1.5

    # Fig 1c: raising the threshold never increases detectable techniques.
    detectable = [row["detectable"] for row in fig1c["rows"]]
    assert all(a >= b for a, b in zip(detectable, detectable[1:]))
    at_010 = next(r for r in fig1c["rows"] if abs(r["threshold"] - 0.10) < 1e-9)
    at_090 = next(r for r in fig1c["rows"] if abs(r["threshold"] - 0.90) < 1e-9)
    assert at_010["detectable"] >= 7  # threshold 10% keeps most techniques
    assert at_090["detectable"] <= at_010["detectable"]
