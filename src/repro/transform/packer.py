"""Dean Edwards-style packer (the Daft Logic obfuscator's engine [10], [12]).

This tool is **not** part of the training-set generation — the paper uses
it exclusively as a held-out "new tool" to show the detectors generalize
(§III-E3).  The construction matches p.a.c.k.e.r:

1. minify the input,
2. collect repeated words (identifiers/keywords), replace each with a
   base-62 token,
3. ship the tokenized payload plus the dictionary inside the canonical
   ``eval(function(p,a,c,k,e,d){…}(payload,62,count,dict.split('|'),0,{}))``
   wrapper.

The syntactic footprint is the one the paper reports the packer leaving:
aggressive minification, short/meaningless identifiers and strings that no
longer appear in plain text.
"""

from __future__ import annotations

import random
import re

from repro.transform.minify_simple import SimpleMinifier

_BASE62 = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

_UNPACKER = (
    "eval(function(p,a,c,k,e,d){e=function(c){return(c<a?'':e(parseInt(c/a)))+"
    "((c=c%a)>35?String.fromCharCode(c+29):c.toString(36))};if(!''.replace(/^/,String)){"
    "while(c--){d[e(c)]=k[c]||e(c)}k=[function(e){return d[e]}];e=function(){return'\\\\w+'};"
    "c=1};while(c--){if(k[c]){p=p.replace(new RegExp('\\\\b'+e(c)+'\\\\b','g'),k[c])}}"
    "return p}("
)


def _encode_base62(value: int) -> str:
    if value < 62:
        return _BASE62[value]
    out = ""
    while value:
        value, rem = divmod(value, 62)
        out = _BASE62[rem] + out
    return out


_WORD_RE = re.compile(r"\b\w\w+\b")


def pack(source: str, rng: random.Random) -> str:
    """Pack ``source`` into the eval(function(p,a,c,k,e,d)…) wrapper."""
    minified = SimpleMinifier().transform(source, rng)

    counts: dict[str, int] = {}
    for match in _WORD_RE.finditer(minified):
        word = match.group(0)
        counts[word] = counts.get(word, 0) + 1
    # Words worth packing: repeated, and longer than their token.
    words = [word for word, count in counts.items() if count >= 2 and len(word) >= 2]
    words.sort(key=lambda word: -counts[word] * len(word))

    token_of = {word: _encode_base62(index) for index, word in enumerate(words)}

    def _tokenize(match: re.Match) -> str:
        word = match.group(0)
        return token_of.get(word, word)

    payload = _WORD_RE.sub(_tokenize, minified)
    payload = payload.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")
    dictionary = "|".join(words)
    return (
        _UNPACKER
        + "'"
        + payload
        + "',62,"
        + str(len(words))
        + ",'"
        + dictionary
        + "'.split('|'),0,{}))"
    )


class DeanEdwardsPacker:
    """Callable wrapper mirroring the Transformer interface (held-out tool)."""

    name = "daft_logic_packer"

    def transform(self, source: str, rng: random.Random) -> str:
        return pack(source, rng)
