"""The vector spaces for the level-1 and level-2 detectors (§III-B).

Each level gets one vector space with consistent dimensions: the hashed
AST 4-gram block followed by the hand-picked feature block.  Level 1 keeps
the generic regular-vs-transformed features; level 2 adds the
per-technique indicators.
"""

from __future__ import annotations

import numpy as np

from repro.features.fastpath import (  # noqa: F401 - fast-path re-export
    TOKEN_STATIC_FEATURES,
    TokenFeatureExtractor,
)
from repro.features.flow_features import FLOW_FEATURES, compute_flow_features
from repro.features.ngrams import ast_ngram_vector, hashed_ngram_vector
from repro.features.rule_features import RULE_FEATURES, compute_rule_features
from repro.features.static_features import compute_static_features
from repro.flows.graph import EnhancedAST, enhance
from repro.rules.findings import Finding

# Hand-picked features for distinguishing regular from transformed code.
GENERIC_FEATURES = [
    "src_avg_line_length",
    "src_max_line_length",
    "src_whitespace_ratio",
    "src_non_alnum_ratio",
    "src_jsfuck_char_ratio",
    "src_comment_ratio",
    "src_comments_per_line",
    "tok_per_char",
    "tok_identifier_ratio",
    "tok_punctuator_ratio",
    "tok_string_ratio",
    "tok_numeric_ratio",
    "tok_keyword_ratio",
    "str_chars_ratio",
    "str_escape_density",
    "str_avg_length",
    "ast_depth_per_line",
    "ast_breadth_per_line",
    "ast_nodes_per_line",
    "ast_nodes_per_char",
    "ast_prop_Literal",
    "ast_prop_Identifier",
    "ast_prop_CallExpression",
    "ast_prop_MemberExpression",
    "ast_prop_BinaryExpression",
    "ast_prop_ConditionalExpression",
    "ast_prop_UnaryExpression",
    "ast_prop_SequenceExpression",
    "ast_prop_VariableDeclaration",
    "ast_prop_FunctionExpression",
    "member_per_unique_id",
    "id_unique_ratio",
    "id_avg_length",
    "id_single_char_ratio",
    "id_hex_ratio",
    "id_entropy",
    "string_ops_per_call",
    "calls_per_node",
    "builtin_eval",
    "builtin_unescape",
    "builtin_Function",
    "cf_edges_per_node",
    "df_edges_per_node",
    # Signature-engine block (repro.rules): both levels see the rule
    # evidence, so it lives in the generic list.
    *RULE_FEATURES,
    # Interprocedural block (repro.flows.interproc): call-graph shape and
    # decoder counts — zeros when the analysis degrades under budget.
    *FLOW_FEATURES,
]

# Additional per-technique indicators for the level-2 detector.
TECHNIQUE_FEATURES = GENERIC_FEATURES + [
    "id_digit_ratio",
    "lit_string_entropy",
    "lit_hexish_string_ratio",
    "arr_count_per_node",
    "arr_avg_size",
    "arr_max_size",
    "arr_empty_ratio",
    "obj_avg_size",
    "ternary_per_statement",
    "seq_avg_length",
    "bang_number_ratio",
    "member_bracket_ratio",
    "member_per_node",
    "op_split_per_node",
    "op_fromCharCode_per_node",
    "op_reverse_per_node",
    "op_join_per_node",
    "op_charCodeAt_per_node",
    "op_replace_per_node",
    "builtin_escape",
    "builtin_atob",
    "builtin_setInterval",
    "builtin_setTimeout",
    "builtin_parseInt",
    "builtin_eval_per_node",
    "constructor_access_per_node",
    "debugger_per_node",
    "while_true_per_node",
    "switch_dispatch_per_node",
    "cff_dispatch_present",
    "opaque_if_per_node",
    "cases_per_switch",
    "bind_unused_ratio",
    "bind_array_ratio",
    "df_fetched_from_array_ratio",
    "df_available",
]


class FeatureExtractor:
    """Turn JavaScript source (or an :class:`EnhancedAST`) into a vector."""

    def __init__(
        self,
        level: int = 1,
        ngram_dims: int = 256,
        data_flow_timeout: float = 120.0,
        ngram_source: str = "ast",
    ) -> None:
        if level not in (1, 2):
            raise ValueError("level must be 1 or 2")
        if ngram_source not in ("ast", "tokens"):
            raise ValueError("ngram_source must be 'ast' or 'tokens'")
        self.level = level
        self.ngram_dims = ngram_dims
        self.data_flow_timeout = data_flow_timeout
        self.ngram_source = ngram_source
        self.static_names = (
            list(GENERIC_FEATURES) if level == 1 else list(TECHNIQUE_FEATURES)
        )

    @property
    def n_features(self) -> int:
        return self.ngram_dims + len(self.static_names)

    @property
    def feature_names(self) -> list[str]:
        """Dimension names: ngram buckets then static features."""
        return [f"ngram_{i}" for i in range(self.ngram_dims)] + self.static_names

    def ngram_block(self, enhanced: EnhancedAST) -> np.ndarray:
        """The hashed n-gram block of the vector (first ``ngram_dims`` dims)."""
        if self.ngram_source == "tokens":
            from repro.features.ngrams import token_ngram_vector

            return token_ngram_vector(enhanced.tokens, n_dims=self.ngram_dims)
        if enhanced.flat is not None:
            # The flat index's pre-order type-name array *is* the unit
            # sequence — no second tree walk.
            return hashed_ngram_vector(enhanced.flat.type_names, n_dims=self.ngram_dims)
        return ast_ngram_vector(enhanced.program, n_dims=self.ngram_dims)

    def project(
        self,
        enhanced: EnhancedAST,
        static: dict[str, float],
        ngrams: np.ndarray | None = None,
    ) -> np.ndarray:
        """Assemble the vector from precomputed blocks (one-pass batch path)."""
        if ngrams is None:
            ngrams = self.ngram_block(enhanced)
        tail = np.array(
            [static.get(name, 0.0) for name in self.static_names], dtype=np.float64
        )
        vector = np.concatenate([ngrams, tail])
        return np.nan_to_num(vector, nan=0.0, posinf=1e12, neginf=-1e12)

    def extract_from_enhanced(self, enhanced: EnhancedAST) -> np.ndarray:
        """Feature vector from an already-enhanced AST."""
        from repro.rules.engine import default_engine

        static = compute_static_features(enhanced)
        static.update(compute_rule_features(default_engine().analyze(enhanced)))
        static.update(compute_flow_features(enhanced.interproc()))
        return self.project(enhanced, static)

    def extract(self, source: str) -> np.ndarray:
        """Feature vector for one script (parses + enhances internally)."""
        enhanced = enhance(source, data_flow_timeout=self.data_flow_timeout)
        return self.extract_from_enhanced(enhanced)

    def extract_matrix(self, sources: list[str]) -> np.ndarray:
        """(n, n_features) matrix for a list of scripts."""
        if not sources:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.vstack([self.extract(source) for source in sources])


class PairedFeatureExtractor:
    """Project one parsed script into *both* detector vector spaces.

    The naive pipeline parses and flow-enhances every transformed script
    twice — once per level.  This extractor parses/enhances exactly once,
    computes the static-feature dictionary once, shares the n-gram block
    when both levels use the same n-gram configuration, and projects the
    single :class:`EnhancedAST` into the level-1 and level-2 spaces.
    """

    def __init__(self, level1: FeatureExtractor, level2: FeatureExtractor) -> None:
        self.level1 = level1
        self.level2 = level2

    @property
    def data_flow_timeout(self) -> float:
        return max(self.level1.data_flow_timeout, self.level2.data_flow_timeout)

    def extract_pair_from_enhanced(
        self, enhanced: EnhancedAST
    ) -> tuple[np.ndarray, np.ndarray, list[Finding]]:
        """(level-1 vector, level-2 vector, findings) from one enhanced AST.

        Findings are computed once — they feed the ``RuleFeatures`` block
        of both vectors *and* ride back to the caller so the batch engine
        can attach them to :class:`DetectionResult` without re-analysis.
        """
        from repro.rules.engine import default_engine

        findings = default_engine().analyze(enhanced)
        static = compute_static_features(enhanced)
        static.update(compute_rule_features(findings))
        # The decoder rules may already have paid for the summaries; the
        # per-AST cache makes this second read free in that case.
        static.update(compute_flow_features(enhanced.interproc()))
        ngrams1 = self.level1.ngram_block(enhanced)
        shares_ngrams = (
            self.level1.ngram_dims == self.level2.ngram_dims
            and self.level1.ngram_source == self.level2.ngram_source
        )
        ngrams2 = ngrams1 if shares_ngrams else self.level2.ngram_block(enhanced)
        return (
            self.level1.project(enhanced, static, ngrams1),
            self.level2.project(enhanced, static, ngrams2),
            findings,
        )

    def extract_pair(
        self, source: str
    ) -> tuple[np.ndarray, np.ndarray, bool, bool, list[Finding]]:
        """One-pass extraction: (v1, v2, df_available, flow_timeout, findings)."""
        enhanced = enhance(source, data_flow_timeout=self.data_flow_timeout)
        v1, v2, findings = self.extract_pair_from_enhanced(enhanced)
        return v1, v2, enhanced.data_flow_available, enhanced.flow_timeout, findings
