"""Interprocedural value-flow throughput: summaries, decoders, degrade.

The interproc layer is lazy and budgeted: rules-only triage never pays
for it, AST-stage rules pay only when the decoder-shape pre-gate fires,
and a blown budget must cost no more than the work done before the
deadline.  These benches pin all three prices in BENCH_flows.json —
absolute summary throughput over decoder-shaped output, the decoder
recovery rate (``extra_info``), and the cost of the degrade path.
"""

import random

import pytest

from repro.corpus.generator import generate_corpus
from repro.flows.interproc import InterprocBudget, analyze_program
from repro.js.parser import parse
from repro.transform.global_array import GlobalArrayObfuscator


@pytest.fixture(scope="module")
def decoder_sources() -> list[str]:
    """Self-referencing and RC4 decoder output: the worst (richest) case."""
    base = generate_corpus(6, seed=1405)
    rng = random.Random(29)
    selfref = GlobalArrayObfuscator(encoding="base64", decoder="selfref")
    rc4 = GlobalArrayObfuscator(encoding="rc4", rotate=True)
    return [selfref.transform(s, rng) for s in base[:3]] + [
        rc4.transform(s, rng) for s in base[3:]
    ]


@pytest.fixture(scope="module")
def decoder_programs(decoder_sources):
    return [parse(source) for source in decoder_sources]


def _throughput(benchmark, n_files: int) -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    if mean is not None and mean.mean:
        benchmark.extra_info["files_per_sec"] = round(n_files / mean.mean, 2)


def test_bench_flows_summaries(benchmark, decoder_programs):
    """Whole-program summarisation over pre-parsed decoder-shaped files.

    ``extra_info["decoders_recovered"]`` is the acceptance number: every
    file carries exactly one decoder, and the analysis must find it.
    """

    def run():
        return [analyze_program(program) for program in decoder_programs]

    results = benchmark(run)
    recovered = sum(len(result.decoders) for result in results)
    assert recovered == len(decoder_programs)
    assert not any(result.degraded for result in results)
    benchmark.extra_info["decoders_recovered"] = recovered
    ratios = [result.resolved_ratio for result in results]
    benchmark.extra_info["resolved_call_ratio_mean"] = round(
        sum(ratios) / len(ratios), 4
    )
    _throughput(benchmark, len(decoder_programs))


def test_bench_flows_end_to_end(benchmark, decoder_sources):
    """Parse + scope + summarise from source: what a feature extraction
    or AST-stage rule pays the first time it touches ``.interproc()``."""

    def run():
        return [analyze_program(parse(source)) for source in decoder_sources]

    results = benchmark(run)
    assert sum(len(result.decoders) for result in results) == len(decoder_sources)
    _throughput(benchmark, len(decoder_sources))


def test_bench_flows_budget_degrade(benchmark, decoder_programs):
    """A starved budget must degrade to empty summaries almost for free —
    this is the guarantee that lets the scan pipeline cap per-file cost."""
    starved = InterprocBudget(max_functions=1)

    def run():
        return [
            analyze_program(program, budget=starved) for program in decoder_programs
        ]

    results = benchmark(run)
    assert all(result.degraded for result in results)
    assert all(not result.summaries for result in results)
    _throughput(benchmark, len(decoder_programs))
