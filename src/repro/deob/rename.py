"""Scope-aware identifier re-naming (inverts ``identifier_obfuscation``).

Rebinds obfuscator-shaped names (``_0x1a2b3c`` hex names and — when the
file is saturated with them — minifier-style one/two-character names) to
readable sequential names derived from the binding kind: ``func1``,
``arg2``, ``var3``.  Scope analysis guarantees capture-free renaming;
globals the file never declares keep their names.

This is a *late* pass: it only runs once the structural passes have
reached fixpoint, so evidence keyed on names (string-array accessors,
dispatcher state variables) is consumed before anything is renamed.
"""

from __future__ import annotations

import re

from repro.deob.base import DeobPass, PassContext, PassResult
from repro.js.ast_nodes import Node, clone
from repro.js.scope import analyze_scopes
from repro.js.tokens import KEYWORDS
from repro.transform.renaming import _UNSAFE_NAMES, expand_shorthand_properties

_HEX_NAME_RE = re.compile(r"^_0x[0-9a-fA-F]+$")

#: minimum population of short names before they are considered minified
_SHORT_NAME_SATURATION = 8

_KIND_PREFIX = {
    "function": "func",
    "class": "cls",
    "param": "arg",
    "catch": "err",
    "import": "mod",
}


class RenamePass(DeobPass):
    name = "rename"
    techniques = ("identifier_obfuscation", "minification_simple")
    late = True

    def rewrite(self, program: Node, ctx: PassContext) -> PassResult:
        work = clone(program)
        expand_shorthand_properties(work)
        scope = analyze_scopes(work)
        bindings = list(scope.iter_all_bindings())

        renameable = [
            binding
            for binding in bindings
            if binding.kind != "global" and binding.name not in _UNSAFE_NAMES
        ]
        hex_named = [b for b in renameable if _HEX_NAME_RE.match(b.name)]
        short_named = [b for b in renameable if len(b.name) <= 2]
        candidates = list(hex_named)
        if len(short_named) >= _SHORT_NAME_SATURATION:
            candidates.extend(short_named)
        if not candidates:
            return PassResult(program)

        taken = {binding.name for binding in bindings}
        counters: dict[str, int] = {}
        renamed = 0
        for binding in candidates:
            prefix = _KIND_PREFIX.get(binding.kind, "var")
            while True:
                counters[prefix] = counters.get(prefix, 0) + 1
                new_name = f"{prefix}{counters[prefix]}"
                if new_name not in taken and new_name not in KEYWORDS:
                    break
            taken.add(new_name)
            for node in binding.declarations + binding.references + binding.assignments:
                node.name = new_name
            renamed += 1
        _strip_scope_annotations(work)
        return PassResult(work, renamed)


def _strip_scope_annotations(root: Node) -> None:
    """Drop the binding/scope annotations scope analysis left on the tree.

    The pass contract is a plain AST out — annotations would leak stale
    ``Binding`` objects into later clones and serialized comparisons.
    """
    from repro.js.visitor import walk

    for node in walk(root):
        for attribute in ("binding", "scope"):
            try:
                delattr(node, attribute)
            except AttributeError:
                pass
