"""String-array inlining + rotation undo (inverts ``global_array``).

Consumes the rules engine's typed :class:`StringArrayEvidence` (array
name, accessor, offset, encoding) rather than re-deriving the shape.  For
each evidenced array the pass:

1. reads the stored strings from the array declaration,
2. undoes the startup rotation by statically replaying the
   ``(function(arr,n){while(n--){arr.push(arr.shift());}})(arr, n)``
   rotator (rotate-left by ``n``),
3. replaces every ``accessor(0x1f)`` call site with the recovered string
   literal (base64-decoding when the accessor routes through ``atob``),
4. drops the array declaration, the accessor function, and the rotator.

When the findings carry :class:`DecoderEvidence` (R013/R014), the pass
additionally runs the interprocedural summary analysis
(``repro.flows.interproc``) and inlines decoder **calls** — accessors the
direct path cannot see because the table hides behind a self-memoizing
function or the entries need an RC4 keystream replay.  The decoded
string for ``dec(0x25, 'key')`` comes from
:func:`repro.flows.values.decode_table_entry` over the summary's
resolved table; the decoder, its table function, the array, and the
rotator are dropped once every call site resolved.
"""

from __future__ import annotations

import base64
import binascii

from repro.deob.base import DeobPass, PassContext, PassResult
from repro.js.ast_nodes import Node, clone
from repro.js.builder import string
from repro.js.visitor import NodeTransformer, walk


def _literal_int(node: Node | None) -> int | None:
    if (
        node is not None
        and node.type == "Literal"
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value).is_integer()
    ):
        return int(node.value)
    return None


def _array_strings(declarator: Node) -> list[str] | None:
    """The stored strings of ``var arr = ["a", "b", …]``, or None."""
    init = declarator.get("init")
    if init is None or init.type != "ArrayExpression":
        return None
    values: list[str] = []
    for element in init.elements:
        if element is None or element.type != "Literal" or not isinstance(element.value, str):
            return None
        values.append(element.value)
    return values


def _rotation_amount(statement: Node, array_name: str) -> int | None:
    """Rotate-left count of a push/shift rotator IIFE over ``array_name``."""
    if statement.type != "ExpressionStatement":
        return None
    call = statement.expression
    if call.type != "CallExpression" or len(call.arguments) != 2:
        return None
    if call.callee.type != "FunctionExpression":
        return None
    target, amount = call.arguments
    if target.type != "Identifier" or target.name != array_name:
        return None
    count = _literal_int(amount)
    if count is None:
        return None
    has_push_shift = any(
        node.type == "CallExpression"
        and node.callee.type == "MemberExpression"
        and node.callee.property.type == "Identifier"
        and node.callee.property.name == "push"
        and len(node.arguments) == 1
        and node.arguments[0].type == "CallExpression"
        and node.arguments[0].callee.type == "MemberExpression"
        and node.arguments[0].callee.property.type == "Identifier"
        and node.arguments[0].callee.property.name == "shift"
        for node in walk(call.callee.body)
    )
    return count if has_push_shift else None


def _decode_base64(value: str) -> str | None:
    try:
        return base64.b64decode(value.encode("ascii"), validate=True).decode("utf-8")
    except (binascii.Error, UnicodeDecodeError, ValueError):
        return None


class _Plan:
    """One fully-resolved array: strings by call-site index, dead names."""

    def __init__(self, accessor: str, offset: int, values: dict[int, str], array: str):
        self.accessor = accessor
        self.offset = offset
        self.values = values
        self.array = array


class _Inliner(NodeTransformer):
    def __init__(self, plans: dict[str, _Plan], dead_arrays: set[str]):
        self.plans = plans
        self.dead_arrays = dead_arrays
        self.rewrites = 0
        self.unresolved: set[str] = set()

    def visit_CallExpression(self, node: Node) -> Node | None:
        callee = node.callee
        if callee.type != "Identifier" or callee.name not in self.plans:
            return None
        plan = self.plans[callee.name]
        if len(node.arguments) != 1:
            self.unresolved.add(callee.name)
            return None
        index = _literal_int(node.arguments[0])
        if index is None or index not in plan.values:
            self.unresolved.add(callee.name)
            return None
        self.rewrites += 1
        return string(plan.values[index])


class _DecoderInliner(NodeTransformer):
    """Inline calls to summarised decoders (index/base64/rc4 kinds)."""

    def __init__(self, plans: dict[str, object]):
        self.plans = plans  #: decoder name → DecoderSummary-like plan
        self.rewrites = 0
        self.unresolved: set[str] = set()

    def visit_CallExpression(self, node: Node) -> Node | None:
        callee = node.callee
        if callee.type != "Identifier" or callee.name not in self.plans:
            return None
        decoder = self.plans[callee.name]
        arguments = node.get("arguments") or []
        index = _literal_int(arguments[0]) if arguments else None
        key = None
        if decoder.kind == "rc4":
            if (
                len(arguments) != 2
                or arguments[1].type != "Literal"
                or not isinstance(arguments[1].value, str)
            ):
                self.unresolved.add(callee.name)
                return None
            key = arguments[1].value
        elif len(arguments) != 1:
            self.unresolved.add(callee.name)
            return None
        if index is None:
            self.unresolved.add(callee.name)
            return None
        position = index - decoder.offset
        if not 0 <= position < len(decoder.table):
            self.unresolved.add(callee.name)
            return None
        from repro.flows.values import decode_table_entry

        decoded = decode_table_entry(decoder.kind, decoder.table[position], key)
        if decoded is None:
            self.unresolved.add(callee.name)
            return None
        self.rewrites += 1
        return string(decoded)


class _DeclDropper(NodeTransformer):
    """Remove the array/accessor declarations and rotator statements."""

    def __init__(self, arrays: set[str], accessors: set[str]):
        self.arrays = arrays
        self.accessors = accessors
        self.removed = 0

    def visit_FunctionDeclaration(self, node: Node) -> object | None:
        identifier = node.get("id")
        if identifier is not None and identifier.name in self.accessors:
            self.removed += 1
            return NodeTransformer.REMOVE
        return None

    def visit_VariableDeclaration(self, node: Node) -> object | None:
        kept = [
            declarator
            for declarator in node.declarations
            if not (
                declarator.id.type == "Identifier"
                and declarator.id.name in self.arrays
                and declarator.get("init") is not None
                and declarator.init.type == "ArrayExpression"
            )
        ]
        if len(kept) == len(node.declarations):
            return None
        self.removed += len(node.declarations) - len(kept)
        if not kept:
            return NodeTransformer.REMOVE
        node.declarations = kept
        return None

    def visit_ExpressionStatement(self, node: Node) -> object | None:
        for array_name in self.arrays:
            if _rotation_amount(node, array_name) is not None:
                self.removed += 1
                return NodeTransformer.REMOVE
        return None


class StringArrayInlinePass(DeobPass):
    name = "string-array-inline"
    techniques = ("global_array",)

    def rewrite(self, program: Node, ctx: PassContext) -> PassResult:
        plans: dict[str, _Plan] = {}
        for evidence in ctx.string_array_evidence():
            if evidence.accessor is None or evidence.offset is None:
                continue
            declarator = self._find_array_declarator(program, evidence.array)
            if declarator is None:
                continue
            stored = _array_strings(declarator)
            if stored is None:
                continue
            rotation = self._find_rotation(program, evidence.array)
            if rotation and len(stored) > 1:
                shift = rotation % len(stored)
                stored = stored[shift:] + stored[:shift]
            if evidence.encoded:
                decoded = [_decode_base64(value) for value in stored]
                if any(value is None for value in decoded):
                    continue
                stored = [value for value in decoded if value is not None]
            values = {
                index + evidence.offset: value for index, value in enumerate(stored)
            }
            plans[evidence.accessor] = _Plan(
                evidence.accessor, evidence.offset, values, evidence.array
            )
        decoder_names = {
            evidence.decoder
            for evidence in ctx.decoder_evidence()
            if evidence.decoder is not None
        }
        if not plans and not decoder_names:
            return PassResult(program)

        work = clone(program)
        rewrites = 0
        if plans:
            inliner = _Inliner(plans, {plan.array for plan in plans.values()})
            work = inliner.transform(work)
            if inliner.rewrites:
                rewrites += inliner.rewrites
                # Only drop machinery whose every call site was resolved.
                resolved = {
                    name: plan
                    for name, plan in plans.items()
                    if name not in inliner.unresolved
                }
                dropper = _DeclDropper(
                    arrays={plan.array for plan in resolved.values()},
                    accessors=set(resolved),
                )
                work = dropper.transform(work)
                rewrites += dropper.removed
        if decoder_names:
            work, decoder_rewrites = self._inline_decoder_calls(work, decoder_names)
            rewrites += decoder_rewrites
        if rewrites == 0:
            return PassResult(program)
        return PassResult(work, rewrites)

    @staticmethod
    def _inline_decoder_calls(
        work: Node, decoder_names: set[str]
    ) -> tuple[Node, int]:
        """Summary-driven path: replay evidenced decoders over their tables.

        Re-derives the summaries on the working clone (the evidence only
        carries names — the resolved tables live in the interprocedural
        analysis), inlines every constant-argument call, and drops the
        decoder, its table function, the array, and the rotator once all
        call sites resolved.  A degraded (budget-capped) analysis yields
        no summaries and the clone is returned unchanged.
        """
        from repro.flows.interproc import analyze_program

        result = analyze_program(work)
        plans = {
            summary.name: summary.decoder
            for summary in result.decoders
            if summary.name in decoder_names
        }
        if not plans:
            return work, 0
        inliner = _DecoderInliner(plans)
        work = inliner.transform(work)
        if inliner.rewrites == 0:
            return work, 0
        dead_functions: set[str] = set()
        dead_arrays: set[str] = set()
        for name, decoder in plans.items():
            if name in inliner.unresolved:
                continue
            dead_functions.update(decoder.chain[:-1])
            dead_arrays.add(decoder.chain[-1])
        dropper = _DeclDropper(arrays=dead_arrays, accessors=dead_functions)
        work = dropper.transform(work)
        return work, inliner.rewrites + dropper.removed

    @staticmethod
    def _find_array_declarator(program: Node, array_name: str) -> Node | None:
        for node in walk(program):
            if (
                node.type == "VariableDeclarator"
                and node.id.type == "Identifier"
                and node.id.name == array_name
            ):
                return node
        return None

    @staticmethod
    def _find_rotation(program: Node, array_name: str) -> int:
        for statement in program.body:
            amount = _rotation_amount(statement, array_name)
            if amount is not None:
                return amount
        return 0
