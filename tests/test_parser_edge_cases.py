"""Additional parser edge cases found in real-world JavaScript."""

import pytest

from repro.js.ast_nodes import to_dict
from repro.js.codegen import generate
from repro.js.parser import parse


def expr(source: str):
    return parse(source).body[0].expression


class TestContextualKeywords:
    def test_of_as_identifier(self):
        program = parse("var of = 1; use(of);")
        assert program.body[0].declarations[0].id.name == "of"

    def test_let_as_identifier_expression(self):
        program = parse("let = 5; use(let);")
        assert program.body[0].expression.left.name == "let"

    def test_async_as_identifier(self):
        program = parse("var async = 1; async = async + 1;")
        assert len(program.body) == 2

    def test_get_set_as_function_names(self):
        program = parse("function get() {} function set() {} get(); set();")
        assert program.body[0].id.name == "get"

    def test_static_as_identifier(self):
        program = parse("var static = 2; use(static);")
        assert program.body[0].declarations[0].id.name == "static"

    def test_keyword_property_access_chain(self):
        node = expr("promise.catch(handler).finally(cleanup);")
        assert node.callee.property.name == "finally"

    def test_keyword_as_object_key(self):
        node = expr("({ new: 1, delete: 2, class: 3, if: 4 });")
        names = [p.key.name for p in node.properties]
        assert names == ["new", "delete", "class", "if"]


class TestTrickyExpressions:
    def test_comma_in_arguments_vs_sequence(self):
        node = expr("f((a, b), c);")
        assert len(node.arguments) == 2
        assert node.arguments[0].type == "SequenceExpression"

    def test_assignment_in_condition(self):
        statement = parse("while ((line = next())) { use(line); }").body[0]
        assert statement.test.type == "AssignmentExpression"

    def test_double_negation(self):
        node = expr("!!value;")
        assert node.argument.type == "UnaryExpression"

    def test_typeof_undefined_comparison(self):
        node = expr("typeof x === 'undefined';")
        assert node.left.type == "UnaryExpression"

    def test_new_new(self):
        node = expr("new (new Factory())();")
        assert node.type == "NewExpression"

    def test_call_on_new_result(self):
        node = expr("new Date().getTime();")
        assert node.type == "CallExpression"
        assert node.callee.object.type == "NewExpression"

    def test_chained_ternaries(self):
        node = expr("a ? 1 : b ? 2 : c ? 3 : 4;")
        assert node.alternate.alternate.type == "ConditionalExpression"

    def test_arrow_returning_arrow_call(self):
        node = expr("(f => g => f(g))(x)(y);")
        assert node.type == "CallExpression"

    def test_object_in_arrow_body_parenthesised(self):
        node = expr("() => ({});")
        assert node.body.type == "ObjectExpression"

    def test_regex_then_method(self):
        node = expr("/\\d+/.test(input);")
        assert node.callee.object.regex["pattern"] == "\\d+"

    def test_string_with_script_tag(self):
        node = expr('el.innerHTML = "<script>alert(1)<\\/script>";')
        assert "script" in node.right.value

    def test_unicode_escape_in_identifier_position(self):
        # Common in obfuscated code: unicode chars in identifiers.
        program = parse("var ключ = 1; use(ключ);")
        assert program.body[0].declarations[0].id.name == "ключ"

    def test_numeric_property_access(self):
        node = expr("matrix[0][1];")
        assert node.object.type == "MemberExpression"

    def test_in_operator_inside_parens_in_for(self):
        parse("for (var ok = ('k' in obj); ok; ok = false) {}")

    def test_getter_with_computed_key(self):
        node = expr("({ get [dynamic]() { return 1; } });")
        assert node.properties[0].computed is True


class TestASIEdgeCases:
    def test_iife_after_variable_requires_semicolon_handling(self):
        # Classic hazard: `var x = f` + `(function(){})()` merges without
        # semicolons; with them it parses as two statements.
        program = parse("var x = f;\n(function () {})();")
        assert len(program.body) == 2

    def test_increment_on_next_line(self):
        program = parse("counter\n++other")
        assert program.body[0].expression.type == "Identifier"
        assert program.body[1].expression.type == "UpdateExpression"

    def test_continue_with_newline_label(self):
        program = parse("outer: for (;;) { continue\nouter; }")
        loop_body = program.body[0].body.body.body
        assert loop_body[0].label is None  # ASI before the label

    def test_empty_return_before_brace(self):
        program = parse("function f() { return }")
        assert program.body[0].body.body[0].argument is None


class TestCodegenEdgeCases:
    def _roundtrip(self, source: str):
        ast = parse(source)
        def strip(d):
            if isinstance(d, dict):
                return {k: strip(v) for k, v in d.items() if k not in ("start", "end", "raw")}
            if isinstance(d, list):
                return [strip(x) for x in d]
            return d
        for mode in (False, True):
            regenerated = generate(ast, compact=mode)
            assert strip(to_dict(parse(regenerated))) == strip(to_dict(ast)), regenerated

    @pytest.mark.parametrize(
        "source",
        [
            "x = (a, b);",
            "f((a, b));",
            "x = (y = 1) + 2;",
            "(x ? f : g)();",
            "x = !(a && b);",
            "void (a + b);",
            "x = (a + b) * c;",
            "x = a * (b + c);",
            "x = -(a + b);",
            "x = (typeof a) + 'x';",
            "new (f())();",
            "new (a.b.f())();",
            "x = (function () {})();",
            "x = { a: (1, 2) }.a;",
            "for (var lookup = ('k' in map); lookup;) { break; }",
            "x = a ? (b, c) : d;",
            "if (a) { b(); } else { (function () {})(); }",
            "x = y ** -2;",
            "x = (-y) ** 2;",
            "obj.if.else = 1;",
            "x = a[b][c](d)[e];",
            "return0 = 5;",
        ],
    )
    def test_parenthesisation_roundtrip(self, source):
        self._roundtrip(source)
