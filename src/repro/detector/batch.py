"""Single-pass, parallel, fault-isolated batch inference engine.

The paper's measurement study (§IV) classifies hundreds of thousands of
scripts; this module provides the substrate for that scale:

- **one-pass extraction** — each source is parsed and flow-enhanced exactly
  once, then projected into both the level-1 and level-2 vector spaces via
  :class:`~repro.features.extractor.PairedFeatureExtractor`;
- **parallel extraction** — feature extraction (the dominant cost) fans out
  across a ``ProcessPoolExecutor``; ``n_workers=1`` is an in-process serial
  fallback with bit-identical output;
- **per-file fault isolation** — parse errors, ``RecursionError``, and
  oversize inputs become per-file :class:`DetectionError` results instead of
  aborting the batch;
- **LRU feature cache** — keyed by source hash, so repeated scripts (the
  §IV-C malicious "waves" are near-duplicates) skip extraction entirely;
- **rules-only triage** — the signature engine (``repro.rules``) can
  pre-empt extraction: in ``prefilter`` mode a decisive text/token-stage
  finding short-circuits the full pipeline for that file, and in ``only``
  mode every verdict comes from staged rule evaluation with no model at
  all (the engine then works without a detector).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.corpus.filters import MAX_BYTES
from repro.detector.level1 import Level1Detector
from repro.detector.level2 import DEFAULT_K, DEFAULT_THRESHOLD, Level2Detector
from repro.features.extractor import PairedFeatureExtractor
from repro.rules.engine import RuleEngine, TriageResult, default_engine
from repro.rules.findings import Finding, max_confidence_by_technique
from repro.transform.base import OBFUSCATION_TECHNIQUES, Technique

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from repro.detector.pipeline import DetectionResult, TransformationDetector

#: outcome tuples:
#: ("ok", vec1, vec2, df_available, flow_timeout, findings) | ("err", kind, message)
_Outcome = tuple

#: Triage modes accepted by :class:`BatchInferenceEngine`.
TRIAGE_MODES = ("off", "prefilter", "only")


@dataclass(frozen=True)
class DetectionError:
    """Why one file of a batch could not be classified."""

    kind: str  #: "oversize" | "parse" | "recursion" | "internal"
    message: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class BatchStats:
    """Summary counters for one batch run."""

    files: int = 0
    ok: int = 0
    errors: int = 0
    cache_hits: int = 0
    df_timeouts: int = 0
    #: files whose flow analysis (DFG timeout or interproc budget) degraded
    flow_timeouts: int = 0
    wall_time: float = 0.0
    extract_time: float = 0.0
    predict_time: float = 0.0
    n_workers: int = 1
    #: files whose verdict came from the rules-only triage path
    triage_hits: int = 0
    #: wall time spent inside staged rule evaluation
    rules_time: float = 0.0
    #: findings per rule id across the whole batch
    rule_hits: dict[str, int] = field(default_factory=dict)
    #: files normalized through the deobfuscation pipeline (``deob=True``)
    deob_files: int = 0
    #: deob pass applications across the batch (pass fired and changed code)
    deob_passes: int = 0
    #: technique signatures removed by normalization across the batch
    deob_removals: int = 0
    #: wall time spent inside the deobfuscation engine
    deob_time: float = 0.0

    @property
    def triage_rate(self) -> float:
        """Fraction of the batch short-circuited by triage."""
        return self.triage_hits / self.files if self.files else 0.0

    def count_findings(self, findings: list[Finding]) -> None:
        for finding in findings:
            self.rule_hits[finding.rule_id] = self.rule_hits.get(finding.rule_id, 0) + 1

    def __str__(self) -> str:
        extra = ""
        if self.triage_hits:
            extra = f", {self.triage_hits} triaged"
        return (
            f"{self.files} files ({self.ok} ok, {self.errors} errors, "
            f"{self.cache_hits} cache hits, {self.df_timeouts} DF timeouts"
            f"{extra}) in {self.wall_time:.2f}s with {self.n_workers} worker(s)"
        )


@dataclass
class BatchFeatures:
    """Both feature matrices for a batch, plus per-file error records.

    ``X1``/``X2`` rows are aligned with ``ok_indices`` (positions into the
    original source list); files that failed extraction appear in ``errors``
    instead and have no feature rows.  ``findings`` (aligned with
    ``ok_indices``) carries the signature-engine evidence computed during
    the same pass.
    """

    X1: np.ndarray
    X2: np.ndarray
    ok_indices: list[int]
    errors: dict[int, DetectionError]
    df_available: list[bool]
    stats: BatchStats
    findings: list[list[Finding]] = field(default_factory=list)
    #: per-ok-file flag: some flow analysis degraded (aligned with ok_indices)
    flow_timeout: list[bool] = field(default_factory=list)


@dataclass
class TokenBatchFeatures:
    """Token-level fast-path features for a batch (no AST built).

    ``X`` rows align with ``ok_indices`` exactly like
    :class:`BatchFeatures`; files the lexer rejected appear in
    ``errors``.
    """

    X: np.ndarray
    ok_indices: list[int]
    errors: dict[int, DetectionError]
    stats: BatchStats


@dataclass
class BatchResult:
    """Per-file detection results (input order) plus batch statistics."""

    results: list["DetectionResult"]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator["DetectionResult"]:
        return iter(self.results)

    def __getitem__(self, index: int) -> "DetectionResult":
        return self.results[index]


def _extract_one(
    paired: PairedFeatureExtractor, max_bytes: int | None, source: str
) -> _Outcome:
    """Extract both vectors for one source; never raises (fault isolation)."""
    if max_bytes is not None:
        size = len(source.encode("utf-8", errors="replace"))
        if size > max_bytes:
            return ("err", "oversize", f"{size} bytes exceeds limit of {max_bytes}")
    try:
        v1, v2, df_available, flow_timeout, findings = paired.extract_pair(source)
    except RecursionError:
        return ("err", "recursion", "AST nesting exceeds the recursion limit")
    except (SyntaxError, ValueError) as error:  # ParseError / LexerError
        return ("err", "parse", str(error) or type(error).__name__)
    except Exception as error:  # noqa: BLE001 - one file must not kill a batch
        return ("err", "internal", f"{type(error).__name__}: {error}")
    return ("ok", v1, v2, df_available, flow_timeout, findings)


def _extract_chunk(
    paired: PairedFeatureExtractor, max_bytes: int | None, chunk: list[str]
) -> list[_Outcome]:
    """Worker entry point: extract a chunk of sources (module-level, picklable)."""
    return [_extract_one(paired, max_bytes, source) for source in chunk]


#: per-process deob engine for pool workers (built once, reused per chunk).
_POOL_DEOB_ENGINE = None


def _deob_chunk(chunk: list[str]) -> list:
    """Worker entry point: normalize a chunk through a process-local engine.

    The engine is constructed lazily inside the worker (the default
    catalog engine — custom rule engines keep the serial path) so the
    expensive pass pipeline never crosses the pickle boundary.
    """
    global _POOL_DEOB_ENGINE
    if _POOL_DEOB_ENGINE is None:
        from repro.deob import DeobEngine

        _POOL_DEOB_ENGINE = DeobEngine()
    return [_POOL_DEOB_ENGINE.run(source) for source in chunk]


class BatchInferenceEngine:
    """Classify many scripts through both detector levels, at corpus scale.

    Parameters
    ----------
    detector:
        A trained :class:`~repro.detector.pipeline.TransformationDetector`,
        or ``None`` for a model-free engine (requires ``triage="only"``).
    n_workers:
        Process-pool width for feature extraction.  ``1`` (the default)
        runs serially in-process and produces bit-identical output.
    cache_size:
        Maximum number of per-source extraction outcomes kept in the LRU
        cache (``0`` disables caching).
    max_source_bytes:
        Inputs larger than this become ``oversize`` error results instead
        of being parsed (defaults to the paper's 2 MB admission bound);
        ``None`` disables the check.
    chunk_size:
        Sources per worker dispatch; ``None`` auto-sizes to roughly four
        chunks per worker.
    observer:
        Optional callable invoked with the final :class:`BatchStats` after
        every :meth:`classify` run (the serving stack wires the metrics
        registry here).  Observer failures never fail a batch.
    triage:
        ``"off"`` (default) runs the full pipeline for every file;
        ``"prefilter"`` runs the cheap text/token rule stages first and
        short-circuits extraction when a decisive signature fires;
        ``"only"`` classifies every file from staged rule evaluation
        alone — no feature extraction, no model inference.
    rule_engine:
        The :class:`~repro.rules.engine.RuleEngine` used for triage
        (defaults to the shared catalog engine).
    """

    def __init__(
        self,
        detector: "TransformationDetector | None",
        n_workers: int = 1,
        cache_size: int = 1024,
        max_source_bytes: int | None = MAX_BYTES,
        chunk_size: int | None = None,
        observer: Any | None = None,
        triage: str = "off",
        rule_engine: RuleEngine | None = None,
    ) -> None:
        if triage not in TRIAGE_MODES:
            raise ValueError(f"triage must be one of {TRIAGE_MODES}, not {triage!r}")
        if detector is None and triage != "only":
            raise ValueError("a model-free engine requires triage='only'")
        self.detector = detector
        self.paired = (
            PairedFeatureExtractor(detector.level1.extractor, detector.level2.extractor)
            if detector is not None
            else None
        )
        self.n_workers = max(1, int(n_workers))
        self.cache_size = max(0, int(cache_size))
        self.max_source_bytes = max_source_bytes
        self.chunk_size = chunk_size
        self.observer = observer
        self.triage = triage
        self._default_rules = rule_engine is None
        self.rules = rule_engine or default_engine()
        self._cache: OrderedDict[str, _Outcome] = OrderedDict()
        self._token_extractor = None
        self._deob_engine = None

    @property
    def token_extractor(self):
        """Lazily-built :class:`~repro.features.fastpath.TokenFeatureExtractor`."""
        if self._token_extractor is None:
            from repro.features.fastpath import TokenFeatureExtractor

            self._token_extractor = TokenFeatureExtractor()
        return self._token_extractor

    @property
    def deob_engine(self):
        """Lazily-built shared :class:`~repro.deob.engine.DeobEngine`."""
        if self._deob_engine is None:
            from repro.deob import DeobEngine

            self._deob_engine = DeobEngine(rules=self.rules)
        return self._deob_engine

    # -- cache ---------------------------------------------------------------

    @staticmethod
    def _key(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8", errors="replace")).hexdigest()

    def _cache_get(self, key: str) -> _Outcome | None:
        outcome = self._cache.get(key)
        if outcome is not None:
            self._cache.move_to_end(key)
        return outcome

    def _cache_put(self, key: str, outcome: _Outcome) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = outcome
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cache_clear(self) -> None:
        self._cache.clear()

    # -- extraction ----------------------------------------------------------

    def _run_extraction(self, sources: list[str]) -> list[_Outcome]:
        """Extract unique cache-miss sources, serially or across workers."""
        if self.n_workers == 1 or len(sources) < 2:
            return [
                _extract_one(self.paired, self.max_source_bytes, source)
                for source in sources
            ]
        chunk_size = self.chunk_size or max(
            1, -(-len(sources) // (self.n_workers * 4))
        )
        chunks = [
            sources[i : i + chunk_size] for i in range(0, len(sources), chunk_size)
        ]
        worker = partial(_extract_chunk, self.paired, self.max_source_bytes)
        outcomes: list[_Outcome] = []
        with ProcessPoolExecutor(max_workers=self.n_workers) as executor:
            for chunk_outcomes in executor.map(worker, chunks):
                outcomes.extend(chunk_outcomes)
        return outcomes

    def extract(self, sources: list[str]) -> BatchFeatures:
        """One-pass feature extraction for a batch (both vector spaces)."""
        if self.paired is None:
            raise ValueError("model-free engine (triage='only') cannot extract features")
        t0 = time.perf_counter()
        stats = BatchStats(files=len(sources), n_workers=self.n_workers)
        outcomes: list[_Outcome | None] = [None] * len(sources)

        # Dedupe by source hash: each distinct script is extracted at most
        # once per batch, and cached outcomes skip extraction entirely.
        pending: dict[str, list[int]] = {}
        miss_order: list[tuple[str, str]] = []
        for index, source in enumerate(sources):
            key = self._key(source)
            cached = self._cache_get(key)
            if cached is not None:
                outcomes[index] = cached
                stats.cache_hits += 1
                continue
            if key in pending:
                stats.cache_hits += 1  # in-batch duplicate: extracted once
            else:
                miss_order.append((key, source))
            pending.setdefault(key, []).append(index)

        fresh = self._run_extraction([source for _key, source in miss_order])
        for (key, _source), outcome in zip(miss_order, fresh):
            self._cache_put(key, outcome)
            for index in pending[key]:
                outcomes[index] = outcome

        ok_indices: list[int] = []
        errors: dict[int, DetectionError] = {}
        df_available: list[bool] = []
        flow_timeout: list[bool] = []
        findings: list[list[Finding]] = []
        rows1: list[np.ndarray] = []
        rows2: list[np.ndarray] = []
        for index, outcome in enumerate(outcomes):
            if outcome[0] == "ok":
                ok_indices.append(index)
                rows1.append(outcome[1])
                rows2.append(outcome[2])
                df_available.append(outcome[3])
                flow_timeout.append(outcome[4])
                findings.append(outcome[5])
                if not outcome[3]:
                    stats.df_timeouts += 1
                if outcome[4]:
                    stats.flow_timeouts += 1
            else:
                errors[index] = DetectionError(kind=outcome[1], message=outcome[2])
        stats.ok = len(ok_indices)
        stats.errors = len(errors)

        X1 = (
            np.vstack(rows1)
            if rows1
            else np.zeros((0, self.paired.level1.n_features), dtype=np.float64)
        )
        X2 = (
            np.vstack(rows2)
            if rows2
            else np.zeros((0, self.paired.level2.n_features), dtype=np.float64)
        )
        stats.wall_time = time.perf_counter() - t0
        stats.extract_time = stats.wall_time
        return BatchFeatures(
            X1=X1,
            X2=X2,
            ok_indices=ok_indices,
            errors=errors,
            df_available=df_available,
            stats=stats,
            findings=findings,
            flow_timeout=flow_timeout,
        )

    def extract_token_features(self, sources: list[str]) -> TokenBatchFeatures:
        """Token-level fast path: one lexer scan per file, no AST.

        Produces the :data:`~repro.features.fastpath.TOKEN_STATIC_FEATURES`
        space (plus the hashed n-gram head) with the same per-file fault
        isolation and oversize policy as :meth:`extract`, at a fraction of
        the cost — the intended front end for crawl-scale pre-ranking and
        triage-adjacent workloads.  Works on model-free engines too.
        """
        t0 = time.perf_counter()
        extractor = self.token_extractor
        stats = BatchStats(files=len(sources), n_workers=1)
        ok_indices: list[int] = []
        errors: dict[int, DetectionError] = {}
        rows: list[np.ndarray] = []
        for index, source in enumerate(sources):
            if self.max_source_bytes is not None:
                size = len(source.encode("utf-8", errors="replace"))
                if size > self.max_source_bytes:
                    errors[index] = DetectionError(
                        "oversize",
                        f"{size} bytes exceeds limit of {self.max_source_bytes}",
                    )
                    continue
            try:
                rows.append(extractor.extract(source))
            except RecursionError:
                errors[index] = DetectionError(
                    "recursion", "token stream exceeds the recursion limit"
                )
            except (SyntaxError, ValueError) as error:  # LexerError
                errors[index] = DetectionError(
                    "parse", str(error) or type(error).__name__
                )
            except Exception as error:  # noqa: BLE001 - fault isolation
                errors[index] = DetectionError(
                    "internal", f"{type(error).__name__}: {error}"
                )
            else:
                ok_indices.append(index)
        stats.ok = len(ok_indices)
        stats.errors = len(errors)
        X = (
            np.vstack(rows)
            if rows
            else np.zeros((0, extractor.n_features), dtype=np.float64)
        )
        stats.wall_time = time.perf_counter() - t0
        stats.extract_time = stats.wall_time
        return TokenBatchFeatures(X=X, ok_indices=ok_indices, errors=errors, stats=stats)

    def _run_deob(self, sources: list[str]) -> list:
        """Normalize a batch, fanning out across the worker pool when it pays.

        Deobfuscation used to serialize on the calling (inference)
        thread; with ``n_workers > 1`` it now runs inside the same
        process-pool workers as feature extraction, with bit-identical
        results to the serial path (gated in tests).  Engines built with
        a custom rule engine keep the serial path — pool workers use the
        shared default catalog.
        """
        if self.n_workers == 1 or len(sources) < 2 or not self._default_rules:
            return [self.deob_engine.run(source) for source in sources]
        chunk_size = self.chunk_size or max(1, -(-len(sources) // (self.n_workers * 4)))
        chunks = [
            sources[i : i + chunk_size] for i in range(0, len(sources), chunk_size)
        ]
        results: list = []
        with ProcessPoolExecutor(max_workers=self.n_workers) as executor:
            for chunk_results in executor.map(_deob_chunk, chunks):
                results.extend(chunk_results)
        return results

    # -- rules-only triage ------------------------------------------------------

    def _result_from_triage(
        self, triage: TriageResult, k: int, threshold: float
    ) -> "DetectionResult":
        """Synthesise a :class:`DetectionResult` from rule findings alone."""
        from repro.detector.pipeline import DetectionResult

        if triage.error is not None:
            kind, message = triage.error
            return DetectionResult(
                level1=set(),
                transformed=False,
                error=DetectionError(kind=kind, message=message),
                findings=triage.findings,
                triaged=True,
            )
        best = max_confidence_by_technique(triage.findings)
        ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))
        techniques = [(name, conf) for name, conf in ranked[:k] if conf >= threshold]
        level1 = {
            "obfuscated" if Technique(name) in OBFUSCATION_TECHNIQUES else "minified"
            for name, _conf in techniques
        }
        return DetectionResult(
            level1=level1,
            transformed=bool(level1),
            techniques=techniques,
            findings=triage.findings,
            triaged=True,
        )

    # -- classification --------------------------------------------------------

    def classify(
        self,
        sources: list[str],
        k: int = DEFAULT_K,
        threshold: float = DEFAULT_THRESHOLD,
        deob: bool = False,
    ) -> BatchResult:
        """Two-level classification of a batch with per-file fault isolation.

        ``deob=True`` first normalizes every script through the
        :class:`~repro.deob.engine.DeobEngine` (never raises; a script the
        deobfuscator cannot improve passes through unchanged), classifies
        the normal forms, and attaches each
        :class:`~repro.deob.engine.DeobResult` to its
        :class:`DetectionResult`.  With ``n_workers > 1`` normalization
        fans out across the process pool instead of serializing on the
        calling thread (bit-identical to the serial path).
        """
        from repro.detector.pipeline import DetectionResult

        t0 = time.perf_counter()
        stats = BatchStats(files=len(sources), n_workers=self.n_workers)
        results: list[Any] = [None] * len(sources)

        deob_results = None
        if deob:
            t_deob = time.perf_counter()
            deob_results = self._run_deob(sources)
            sources = [outcome.source for outcome in deob_results]
            stats.deob_files = len(sources)
            stats.deob_passes = sum(
                len(outcome.report.passes_applied) for outcome in deob_results
            )
            stats.deob_removals = sum(
                len(outcome.report.techniques_removed) for outcome in deob_results
            )
            stats.deob_time = time.perf_counter() - t_deob

        if self.triage != "off":
            t_rules = time.perf_counter()
            deep = "auto" if self.triage == "only" else False
            for index, source in enumerate(sources):
                triage = self.rules.triage(source, deep=deep)
                if self.triage == "only" or triage.decided:
                    results[index] = self._result_from_triage(triage, k, threshold)
                    if triage.decided:
                        stats.triage_hits += 1
            stats.rules_time = time.perf_counter() - t_rules

        remaining = [index for index, result in enumerate(results) if result is None]
        if remaining:
            features = self.extract([sources[index] for index in remaining])
            sub = features.stats
            stats.cache_hits += sub.cache_hits
            stats.df_timeouts += sub.df_timeouts
            stats.flow_timeouts += sub.flow_timeouts
            stats.extract_time += sub.extract_time
            for position, error in features.errors.items():
                results[remaining[position]] = DetectionResult(
                    level1=set(), transformed=False, techniques=[], error=error
                )

            t_predict = time.perf_counter()
            if features.ok_indices:
                proba1 = self.detector.level1.predict_proba_features(features.X1)
                label_sets = Level1Detector.labels_from_proba(proba1)
                transformed_mask = np.array(
                    [bool(ls & {"minified", "obfuscated"}) for ls in label_sets],
                    dtype=bool,
                )
                technique_lists: list[list[tuple[str, float]]] = []
                if transformed_mask.any():
                    proba2 = self.detector.level2.predict_proba_features(
                        features.X2[transformed_mask]
                    )
                    technique_lists = Level2Detector.techniques_from_proba(
                        proba2, k=k, threshold=threshold
                    )
                techniques_iter = iter(technique_lists)
                for position, labels, transformed, findings, flow_timeout in zip(
                    features.ok_indices,
                    label_sets,
                    transformed_mask,
                    features.findings,
                    features.flow_timeout,
                ):
                    techniques = next(techniques_iter) if transformed else []
                    results[remaining[position]] = DetectionResult(
                        level1=labels,
                        transformed=bool(transformed),
                        techniques=techniques,
                        findings=findings,
                        flow_timeout=flow_timeout,
                    )
            stats.predict_time = time.perf_counter() - t_predict

        if deob_results is not None:
            for result, outcome in zip(results, deob_results):
                result.deob = outcome

        for result in results:
            if result.ok:
                stats.ok += 1
            else:
                stats.errors += 1
            stats.count_findings(result.findings)
        stats.wall_time = time.perf_counter() - t0
        if self.observer is not None:
            try:
                self.observer(stats)
            except Exception:  # noqa: BLE001 - observability must not fail a batch
                pass
        return BatchResult(results=results, stats=stats)
