"""Online detection service (``python -m repro serve``).

A stdlib-only asyncio HTTP/1.1 server that keeps a trained
:class:`~repro.detector.pipeline.TransformationDetector` warm and
answers ``POST /classify`` with micro-batched inference:

- :mod:`repro.serve.protocol` — hand-rolled HTTP parsing with hard caps,
- :mod:`repro.serve.metrics` — thread-safe counters/gauges/histograms,
- :mod:`repro.serve.registry` — model ownership, leases, hot-reload,
- :mod:`repro.serve.batcher` — bounded-queue micro-batching collector,
- :mod:`repro.serve.server` — routing, drain, and the CLI entry point,
- :mod:`repro.serve.client` — a small blocking client helper.
"""

from repro.serve.batcher import BatcherClosedError, MicroBatcher, QueueFullError
from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import LoadedModel, ModelRegistry
from repro.serve.server import (
    DetectionServer,
    ServeConfig,
    ThreadedServer,
    serve_forever,
)

__all__ = [
    "BatcherClosedError",
    "DetectionServer",
    "LoadedModel",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelRegistry",
    "QueueFullError",
    "ServeAPIError",
    "ServeClient",
    "ServeConfig",
    "ThreadedServer",
    "serve_forever",
]
