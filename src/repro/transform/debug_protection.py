"""Debug protection (§II-A: code protection).

Reproduces obfuscator.io's *debug protection* option [24]: a recursive
probe calls the ``debugger`` statement through a constructed function in a
tight loop (re-armed with ``setInterval``), which freezes the page as soon
as the browser's Developer Tools open.  Like the other obfuscator.io
options, identifiers are also hex-renamed.
"""

from __future__ import annotations

import random

from repro.js.codegen import generate
from repro.js.parser import parse
from repro.transform.base import Technique, Transformer, looks_minified, register
from repro.transform.renaming import rename_hex

_PROTECTION_TEMPLATE = """\
function {guard}({counter}) {{
    function {probe}({depth}) {{
        if (typeof {depth} === "string") {{
            return function ({loop}) {{}}
                ["constructor"]("while (true) {{}}")
                ["apply"]("counter");
        }} else {{
            if (("" + {depth} / {depth})["length"] !== 1 || {depth} % 20 === 0) {{
                (function () {{
                    return true;
                }})
                ["constructor"]("debugger")
                ["call"]("action");
            }} else {{
                (function () {{
                    return false;
                }})
                ["constructor"]("debugger")
                ["apply"]("stateObject");
            }}
        }}
        {probe}(++{depth});
    }}
    try {{
        if ({counter}) {{
            return {probe};
        }} else {{
            {probe}(0);
        }}
    }} catch ({error}) {{}}
}}
setInterval(function () {{
    {guard}();
}}, 4000);
"""


def _fresh(rng: random.Random) -> str:
    return "_0x" + "".join(rng.choice("0123456789abcdef") for _ in range(6))


def build_protection(rng: random.Random) -> str:
    """The debug-protection preamble with randomized identifiers."""
    names = {
        key: _fresh(rng) for key in ("guard", "counter", "probe", "depth", "loop", "error")
    }
    return _PROTECTION_TEMPLATE.format(**names)


class DebugProtector(Transformer):
    """debugger-loop anti-devtools wrapper + hex renaming."""

    technique = Technique.DEBUG_PROTECTION
    labels = frozenset({Technique.DEBUG_PROTECTION, Technique.IDENTIFIER_OBFUSCATION})

    def transform(self, source: str, rng: random.Random) -> str:
        protected = build_protection(rng) + "\n" + source
        program = parse(protected)
        rename_hex(program, rng)
        return generate(program, compact=looks_minified(source))


register(DebugProtector())
